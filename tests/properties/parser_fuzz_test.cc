// Structure-aware fuzzing of the durable-artifact parsers -- snapshot
// blobs, write-ahead journals, CSV traces -- plus the operator-text parsers
// (what-if query scripts and sweep grids, DESIGN.md §15; workload spec
// files, DESIGN.md §16).
// The durability layer's whole promise rests on these readers being total --
// any byte damage a crash or a disk can produce must come back as a clean
// Result error (or a truncated torn tail, for the WAL), never a crash,
// hang, or silently wrong state.
// Mutations are seeded from DEFL_FAULT_SEED so CI's seed matrix explores
// fresh damage each leg; a checked-in corpus of crafted regression inputs
// (tests/corpus/) pins the known-nasty shapes: bit flips that must trip the
// checksum, truncations at every layer, and lying length fields whose
// checksums are VALID but whose semantics are not.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/cluster/sim_session.h"
#include "src/cluster/trace_io.h"
#include "src/common/atomic_file.h"
#include "src/common/rng.h"
#include "src/common/sim_options.h"
#include "src/service/query.h"
#include "src/service/sweep.h"
#include "src/sim/snapshot_io.h"
#include "src/sim/wal_io.h"

namespace defl {
namespace {

#ifndef DEFL_SOURCE_DIR
#error "build must define DEFL_SOURCE_DIR"
#endif

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

// A small but real session snapshot: every subsystem section is present.
std::string ValidSnapshotBytes() {
  ClusterSimConfig config;
  config.num_servers = 4;
  config.server_capacity = ResourceVector(16.0, 64.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 1800.0;
  config.trace.max_lifetime_s = 900.0;
  config.trace.seed = 7;
  config.trace =
      WithTargetLoad(config.trace, 1.4, config.num_servers, config.server_capacity);
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  session.value().StepUntil(600.0);
  return session.value().SnapshotBytes();
}

std::string ValidWalBytes() {
  std::string image = EncodeWalHeader();
  for (int i = 1; i <= 10; ++i) {
    image += EncodeWalRecord(WalRecord::StepUntil(100.0 * i));
    if (i % 3 == 0) {
      image += EncodeWalRecord(
          WalRecord::Checkpoint(static_cast<uint64_t>(i), 100.0 * i, 17 * i,
                                0xabcdULL + static_cast<uint64_t>(i), 4096));
    }
  }
  return image;
}

// Applies one seeded structural mutation; returns true if `bytes` changed.
bool Mutate(Rng& rng, std::string& bytes) {
  if (bytes.empty()) {
    return false;
  }
  const std::string before = bytes;
  switch (rng.UniformInt(0, 3)) {
    case 0: {  // single bit flip
      const size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[at] = static_cast<char>(bytes[at] ^ (1 << rng.UniformInt(0, 7)));
      break;
    }
    case 1:  // truncate anywhere, including inside the header or footer
      bytes.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1)));
      break;
    case 2: {  // stomp 8 bytes: the shape of a corrupted length/checksum field
      const size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      for (size_t i = at; i < bytes.size() && i < at + 8; ++i) {
        bytes[i] = static_cast<char>(rng.UniformInt(0, 255));
      }
      break;
    }
    default:  // append garbage past the real end
      for (int i = 0; i < 16; ++i) {
        bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
      break;
  }
  return bytes != before;
}

TEST(ParserFuzzTest, DamagedSnapshotsAlwaysRejectCleanly) {
  const std::string valid = ValidSnapshotBytes();
  ASSERT_FALSE(valid.empty());
  Rng rng(TestSeed() ^ 0x5a47f001ULL);
  int rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    if (!Mutate(rng, mutated)) {
      continue;
    }
    const Result<SimSession> restored = SimSession::RestoreBytes(mutated);
    // The blob is checksummed end to end: ANY change must be caught.
    ASSERT_FALSE(restored.ok())
        << "trial " << trial << ": a damaged snapshot restored";
    EXPECT_FALSE(restored.error().empty());
    ++rejected;
  }
  EXPECT_GT(rejected, 150);  // the mutator isn't degenerate
}

TEST(ParserFuzzTest, DamagedWalsNeverGainRecords) {
  const std::string valid = ValidWalBytes();
  const Result<WalReadResult> baseline = DecodeWal(valid);
  ASSERT_TRUE(baseline.ok()) << baseline.error();
  const size_t baseline_records = baseline.value().records.size();
  Rng rng(TestSeed() ^ 0x3a11f002ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    if (!Mutate(rng, mutated)) {
      continue;
    }
    const Result<WalReadResult> read = DecodeWal(mutated);
    if (!read.ok()) {
      // Hard errors only come from header damage.
      EXPECT_FALSE(read.error().empty());
      continue;
    }
    // Torn-tail tolerance must only ever SHRINK the accepted prefix; damage
    // can never mint records (appended garbage lacks a valid checksum).
    EXPECT_LE(read.value().records.size(), baseline_records + 0u)
        << "trial " << trial;
    EXPECT_LE(read.value().valid_bytes, mutated.size());
  }
}

TEST(ParserFuzzTest, DamagedTracesErrorOrParseNeverCrash) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 20; ++i) {
    TraceEvent e;
    e.arrival_s = 60.0 * i;
    e.lifetime_s = 600.0;
    e.spec.name = "vm-" + std::to_string(i);
    e.spec.size = ResourceVector(2.0, 2048.0, 10.0, 10.0);
    e.spec.min_size = ResourceVector(1.0, 1024.0, 5.0, 5.0);
    events.push_back(e);
  }
  const std::string valid = TraceToCsv(events);
  ASSERT_TRUE(ParseTraceCsv(valid).ok());
  Rng rng(TestSeed() ^ 0x77ace003ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    if (!Mutate(rng, mutated)) {
      continue;
    }
    // Text is not checksummed, so some mutations legitimately still parse
    // (e.g. a digit changed inside a float). The property is totality: a
    // clean verdict either way, and errors carry a message.
    const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(mutated);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error().empty());
    }
  }
}

TEST(ParserFuzzTest, DamagedQueryScriptsErrorOrParseNeverCrash) {
  // Operator text is not checksummed, so some mutations still parse (e.g. a
  // digit changed inside a count). The property is totality: every mutation
  // gets a clean verdict, and rejections carry a non-empty message.
  const std::string valid =
      "# capacity probe\n"
      "place count=20 cpu=2 mem=4096 prio=low hours=0.5\n"
      "fail fraction=0.3 seed=11\n"
      "overcommit target=1.6 cpu=2 mem=4096 limit=200\n"
      "run hours=2\n"
      "slo p99=80 fraction=0.4 policy=slo period=300 hours=1\n";
  ASSERT_TRUE(ParseQueryScript(valid).ok());
  Rng rng(TestSeed() ^ 0x9e81f004ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    if (!Mutate(rng, mutated)) {
      continue;
    }
    const Result<std::vector<WhatIfQuery>> parsed = ParseQueryScript(mutated);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error().empty()) << "trial " << trial;
    }
  }
}

TEST(ParserFuzzTest, DamagedWorkloadSpecsErrorOrParseNeverCrash) {
  // The unified workload spec (DESIGN.md §16) is two total layers: the
  // line-oriented parser, then semantic validation. Both must return a clean
  // verdict for any damage, and every rejection names a line or key.
  const std::string valid =
      "# interactive serving over diurnal arrivals\n"
      "load = 1.8\n"
      "duration-h = 6\n"
      "low-pri-fraction = 0.6\n"
      "seed = 42\n"
      "diurnal = on\n"
      "diurnal-amplitude = 0.6\n"
      "arrival-seed = 17\n"
      "interactive = on\n"
      "interactive-fraction = 0.45\n"
      "slo-p99-ms = 80\n"
      "slo-policy = slo\n"
      "rate-rps-per-cpu = 60\n";
  {
    const Result<WorkloadSpec> spec = ParseWorkloadSpec(valid, "spec");
    ASSERT_TRUE(spec.ok()) << spec.error();
    ASSERT_TRUE(ValidateWorkloadSpec(spec.value(), "spec").ok());
  }
  Rng rng(TestSeed() ^ 0x1c0df006ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    if (!Mutate(rng, mutated)) {
      continue;
    }
    const Result<WorkloadSpec> parsed = ParseWorkloadSpec(mutated, "spec");
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error().empty()) << "trial " << trial;
      continue;
    }
    // Some mutations survive the parser (a digit changed inside a number);
    // validation must still give a clean verdict on whatever got through.
    const Result<bool> checked = ValidateWorkloadSpec(parsed.value(), "spec");
    if (!checked.ok()) {
      EXPECT_FALSE(checked.error().empty()) << "trial " << trial;
    }
  }
}

TEST(ParserFuzzTest, DamagedSweepGridsErrorOrParseNeverCrash) {
  const std::string valid =
      "policy = best-fit, first-fit, 2-choices\n"
      "fail-fraction = 0.0, 0.25\n"
      "overcommit-target = 1.2, 1.8\n"
      "intensity = 0.5, 1.0\n"
      "hours = 1\n"
      "shape = 2:4096\n"
      "fail-seed = 7\n"
      "limit = 300\n";
  ASSERT_TRUE(ParseSweepGrid(valid).ok());
  Rng rng(TestSeed() ^ 0x6a1df005ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    if (!Mutate(rng, mutated)) {
      continue;
    }
    const Result<SweepGrid> parsed = ParseSweepGrid(mutated);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error().empty()) << "trial " << trial;
    }
  }
}

// The checked-in corpus: regression inputs crafted to probe specific layers
// (checksum, framing, semantic bounds). File-name prefix selects the parser;
// every corpus member must be handled without a crash, and the snapshot- and
// trace-corpus members must all be REJECTED (they are all damaged).
TEST(ParserFuzzTest, CheckedInCorpusIsHandledCleanly) {
  const std::string dir = DEFL_SOURCE_DIR "/tests/corpus";
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name == "README.md") {
      continue;  // the corpus index, not a corpus member
    }
    const Result<std::string> bytes = ReadFileToString(entry.path().string());
    ASSERT_TRUE(bytes.ok()) << bytes.error();
    ++seen;
    if (name.rfind("snapshot_", 0) == 0) {
      const Result<SimSession> restored = SimSession::RestoreBytes(bytes.value());
      EXPECT_FALSE(restored.ok()) << name << " restored but is damaged";
      if (!restored.ok()) {
        EXPECT_FALSE(restored.error().empty()) << name;
      }
    } else if (name.rfind("wal_", 0) == 0) {
      const Result<WalReadResult> read = DecodeWal(bytes.value());
      if (read.ok()) {
        // Damaged journals may keep a valid prefix, but must flag the tear.
        EXPECT_TRUE(read.value().torn) << name << " decoded without a tear";
        EXPECT_FALSE(read.value().torn_reason.empty()) << name;
      } else {
        EXPECT_FALSE(read.error().empty()) << name;
      }
    } else if (name.rfind("trace_", 0) == 0) {
      const Result<std::vector<TraceEvent>> parsed = ParseTraceCsv(bytes.value());
      EXPECT_FALSE(parsed.ok()) << name << " parsed but is damaged";
    } else if (name.rfind("query_", 0) == 0) {
      const Result<std::vector<WhatIfQuery>> parsed =
          ParseQueryScript(bytes.value());
      EXPECT_FALSE(parsed.ok()) << name << " parsed but is malformed";
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error().empty()) << name;
      }
    } else if (name.rfind("grid_", 0) == 0) {
      const Result<SweepGrid> parsed = ParseSweepGrid(bytes.value());
      EXPECT_FALSE(parsed.ok()) << name << " parsed but is malformed";
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error().empty()) << name;
      }
    } else if (name.rfind("workload_", 0) == 0) {
      // Workload-spec corpus members are rejected by one of the two layers:
      // the line parser or cross-key validation. Either way the error names
      // the offending line or key.
      const Result<WorkloadSpec> parsed = ParseWorkloadSpec(bytes.value(), name);
      if (parsed.ok()) {
        const Result<bool> checked = ValidateWorkloadSpec(parsed.value(), name);
        EXPECT_FALSE(checked.ok()) << name << " validated but is malformed";
        if (!checked.ok()) {
          EXPECT_FALSE(checked.error().empty()) << name;
        }
      } else {
        EXPECT_FALSE(parsed.error().empty()) << name;
      }
    } else {
      ADD_FAILURE() << "corpus file " << name
                    << " has no parser prefix "
                       "(snapshot_/wal_/trace_/query_/grid_/workload_)";
    }
  }
  EXPECT_GE(seen, 20) << "corpus went missing from " << dir;
}

}  // namespace
}  // namespace defl
