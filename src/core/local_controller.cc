#include "src/core/local_controller.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace defl {

const char* DeflationSplitName(DeflationSplit split) {
  switch (split) {
    case DeflationSplit::kProportional:
      return "proportional";
    case DeflationSplit::kEqual:
      return "equal";
  }
  return "?";
}

LocalController::LocalController(Server* server, const LocalControllerConfig& config)
    : server_(server), config_(config), cascade_(config.mode, config.latency) {
  assert(server_ != nullptr);
}

void LocalController::AttachTelemetry(TelemetryContext* telemetry) {
  telemetry_ = telemetry;
  cascade_.AttachTelemetry(telemetry);
  for (const auto& [id, guard] : guards_) {
    guard->AttachTelemetry(telemetry);
  }
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.make_room_calls = registry.Counter("controller/make_room/calls");
  metrics_.make_room_failures = registry.Counter("controller/make_room/failures");
  metrics_.preemptions = registry.Counter("controller/preemptions");
  metrics_.make_room_latency_s = registry.Distribution("controller/make_room/latency_s");
}

void LocalController::AttachFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  cascade_.AttachFaultInjector(faults);
  if (faults_ == nullptr) {
    guards_.clear();
    return;
  }
  for (const auto& [id, agent] : agents_) {
    WrapAgent(id, agent);
  }
}

void LocalController::WrapAgent(VmId id, DeflationAgent* agent) {
  auto guard = std::make_unique<GuardedAgent>(id, agent, faults_, config_.guard);
  guard->AttachTelemetry(telemetry_);
  guards_[id] = std::move(guard);
}

void LocalController::RegisterAgent(VmId id, DeflationAgent* agent) {
  agents_[id] = agent;
  if (faults_ != nullptr) {
    WrapAgent(id, agent);
  }
}

void LocalController::UnregisterAgent(VmId id) {
  agents_.erase(id);
  guards_.erase(id);
}

DeflationAgent* LocalController::FindAgent(VmId id) const {
  const auto guard = guards_.find(id);
  if (guard != guards_.end()) {
    return guard->second.get();
  }
  const auto it = agents_.find(id);
  return it != agents_.end() ? it->second : nullptr;
}

GuardedAgent* LocalController::FindGuard(VmId id) const {
  const auto guard = guards_.find(id);
  return guard != guards_.end() ? guard->second.get() : nullptr;
}

DeflationOutcome LocalController::GuardedDeflate(Vm& vm, const ResourceVector& target) {
  DeflationOutcome outcome = cascade_.Deflate(vm, FindAgent(vm.id()), target, Options());
  if (GuardedAgent* guard = FindGuard(vm.id())) {
    // Timeouts, retries, and backoff waits happened inside the app stage;
    // they are wall-clock time the reclamation spent.
    outcome.latency_seconds += guard->TakeInjectedDelay();
  }
  return outcome;
}

ResourceVector LocalController::DeflatedBy(const Vm& vm) {
  return vm.guest_os().unplugged() + vm.hv_reclaimed();
}

DeflationOutcome LocalController::DeflateVm(VmId id, const ResourceVector& target) {
  Vm* vm = server_->FindVm(id);
  assert(vm != nullptr);
  return GuardedDeflate(*vm, target);
}

CascadeOptions LocalController::Options() const {
  CascadeOptions options;
  options.deadline_s = config_.deflation_deadline_s;
  return options;
}

ReclaimResult LocalController::MakeRoom(const ResourceVector& demand) {
  ReclaimResult result;
  ResourceVector need = (demand - server_->Free()).ClampNonNegative();
  if (need.IsZero()) {
    result.success = true;
    return result;
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.make_room_calls);
  }

  // Preempt while even full deflation of every low-priority VM cannot cover
  // the shortfall. "VMs that are farthest from their deflation target are
  // preempted" (Section 5): the gap between a VM's proportional share of the
  // shortfall and what it can actually give is largest for the least
  // deflatable VMs.
  while (!need.AllLeq(server_->Deflatable())) {
    Vm* victim = nullptr;
    double worst_gap = -1.0;
    for (const auto& vm : server_->vms()) {
      if (!vm->deflatable() || vm->state() != VmState::kRunning) {
        continue;
      }
      // Shortfall this VM cannot absorb even if deflated to its minimum,
      // measured along the dominant dimension of the remaining need.
      const ResourceVector gap_vec = (need - vm->deflatable_amount()).ClampNonNegative();
      const double gap = gap_vec.SafeDivide(server_->capacity()).MaxComponent();
      if (gap > worst_gap) {
        worst_gap = gap;
        victim = vm.get();
      }
    }
    if (victim == nullptr) {
      // No low-priority VMs left to preempt; demand cannot be satisfied.
      result.success = false;
      result.freed = (demand - (demand - server_->Free()).ClampNonNegative());
      if (telemetry_ != nullptr) {
        telemetry_->metrics().Add(metrics_.make_room_failures);
      }
      return result;
    }
    const VmId victim_id = victim->id();
    DEFL_LOG(kInfo) << "server " << server_->id() << ": preempting VM " << victim_id;
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Add(metrics_.preemptions);
      telemetry_->trace().Record(TraceEventKind::kPreemption, CascadeLayer::kNone,
                                 victim_id, server_->id(), need, victim->effective(),
                                 0);
    }
    victim->set_state(VmState::kPreempted);
    UnregisterAgent(victim_id);
    server_->RemoveVm(victim_id);  // frees its whole effective allocation
    result.preempted.push_back(victim_id);
    need = (demand - server_->Free()).ClampNonNegative();
    if (need.IsZero()) {
      result.success = true;
      result.freed = demand;
      return result;
    }
  }

  // Split the shortfall across deflatable VMs: proportionally to their
  // headroom (x_i = need * deflatable_i / sum_j deflatable_j, the paper's
  // policy) or equally (the ablation baseline), scaled back by alpha.
  const ResourceVector total_deflatable = server_->Deflatable();
  int deflatable_count = 0;
  for (const auto& vm : server_->vms()) {
    if (vm->deflatable() && vm->state() == VmState::kRunning) {
      ++deflatable_count;
    }
  }
  for (const auto& vm : server_->vms()) {
    if (!vm->deflatable() || vm->state() != VmState::kRunning) {
      continue;
    }
    const ResourceVector deflatable = vm->deflatable_amount();
    ResourceVector target;
    for (const ResourceKind kind : kAllResources) {
      if (total_deflatable[kind] <= 0.0 || need[kind] <= 0.0) {
        continue;
      }
      const double share =
          config_.split == DeflationSplit::kProportional
              ? deflatable[kind] / total_deflatable[kind]
              : 1.0 / static_cast<double>(std::max(deflatable_count, 1));
      target[kind] = need[kind] * share * (1.0 - config_.alpha);
    }
    if (!target.AnyPositive()) {
      continue;
    }
    const DeflationOutcome outcome = GuardedDeflate(*vm, target);
    result.freed += outcome.TotalReclaimed();
    result.latency_seconds = std::max(result.latency_seconds, outcome.latency_seconds);
    result.deflated.push_back(vm->id());
  }

  result.success = demand.AllLeq(server_->Free(), 1e-6);
  if (!result.success) {
    // Proportional split can under-deliver when a VM misses its target
    // (e.g. unplug granularity). Sweep up the remainder greedily.
    ResourceVector residual = (demand - server_->Free()).ClampNonNegative();
    for (const auto& vm : server_->vms()) {
      if (!residual.AnyPositive()) {
        break;
      }
      if (!vm->deflatable() || vm->state() != VmState::kRunning) {
        continue;
      }
      const ResourceVector take = residual.Min(vm->deflatable_amount());
      if (!take.AnyPositive()) {
        continue;
      }
      const DeflationOutcome outcome = GuardedDeflate(*vm, take);
      result.freed += outcome.TotalReclaimed();
      result.latency_seconds = std::max(result.latency_seconds, outcome.latency_seconds);
      residual = (demand - server_->Free()).ClampNonNegative();
    }
    result.success = demand.AllLeq(server_->Free(), 1e-6);
  }
  if (telemetry_ != nullptr) {
    MetricsRegistry& registry = telemetry_->metrics();
    registry.Observe(metrics_.make_room_latency_s, result.latency_seconds);
    if (!result.success) {
      registry.Add(metrics_.make_room_failures);
    }
  }
  return result;
}

ResourceVector LocalController::ReinflateAll(const ResourceVector& hold_back) {
  return ApplyReinflate(PlanReinflate(hold_back));
}

ReinflatePlan LocalController::PlanReinflate(const ResourceVector& hold_back) const {
  ReinflatePlan plan;
  PlanReinflate(hold_back, &plan);
  return plan;
}

void LocalController::PlanReinflate(const ResourceVector& hold_back,
                                    ReinflatePlan* out) const {
  out->entries.clear();  // reuse the caller's buffer; capacity survives
  const ResourceVector pool = (server_->Free() - hold_back).ClampNonNegative();
  if (!pool.AnyPositive()) {
    return;
  }

  // Proportional to how much each VM is currently deflated by. Each entry's
  // give depends only on these pre-scan totals, never on earlier entries, so
  // planning ahead of the apply loop is arithmetically identical to the old
  // fused loop.
  ResourceVector total_deflated;
  for (const auto& vm : server_->vms()) {
    total_deflated += DeflatedBy(*vm);
  }
  if (!total_deflated.AnyPositive()) {
    return;
  }

  for (const auto& vm : server_->vms()) {
    const ResourceVector deflated = DeflatedBy(*vm);
    ResourceVector give;
    for (const ResourceKind kind : kAllResources) {
      if (total_deflated[kind] > 0.0) {
        give[kind] = std::min(pool[kind] * deflated[kind] / total_deflated[kind],
                              deflated[kind]);
      }
    }
    if (!give.AnyPositive()) {
      continue;
    }
    out->entries.push_back(ReinflatePlan::Entry{vm.get(), give});
  }
}

ResourceVector LocalController::ApplyReinflate(const ReinflatePlan& plan) {
  ResourceVector returned_total;
  for (const ReinflatePlan::Entry& entry : plan.entries) {
    returned_total += cascade_.Reinflate(*entry.vm, FindAgent(entry.vm->id()), entry.give);
  }
  return returned_total;
}

}  // namespace defl
