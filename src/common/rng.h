// Deterministic pseudo-random number generation and the distributions used by
// the deflation simulator (uniform, exponential, lognormal, bounded Pareto,
// Zipf). All stochastic components in this repository draw from an explicitly
// seeded Rng so every experiment is reproducible run-to-run.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace defl {

// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
// Seeded through SplitMix64 so that any 64-bit seed (including 0) yields a
// well-mixed initial state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Lognormal: exp(N(mu, sigma^2)).
  double LogNormal(double mu, double sigma);

  // Standard normal via Box-Muller (no cached spare; stateless per call).
  double Normal(double mean, double stddev);

  // Bounded Pareto on [lo, hi] with tail index alpha. Heavy-tailed lifetimes.
  double BoundedPareto(double lo, double hi, double alpha);

  // Bernoulli trial.
  bool Chance(double p);

  // Fisher-Yates shuffle of an index range [0, n).
  std::vector<int> Permutation(int n);

  // Derive an independent child stream (e.g. one per simulated server).
  Rng Fork();

  // Raw generator state, for deterministic checkpoint/restore (SimSession
  // snapshots). Restoring the saved words resumes the exact draw sequence.
  std::array<uint64_t, 4> SaveState() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) {
      s_[i] = state[static_cast<size_t>(i)];
    }
  }

 private:
  uint64_t s_[4];
};

// Samples ranks from a Zipf(s) popularity distribution over {1..n} using
// Hormann's rejection-inversion method; O(1) per sample independent of n.
class ZipfDistribution {
 public:
  // n: universe size (>= 1), s: skew exponent (> 0, s != 1 handled too).
  ZipfDistribution(int64_t n, double s);

  // Returns a rank in [1, n]; rank 1 is the most popular item.
  int64_t Sample(Rng& rng) const;

  int64_t universe() const { return n_; }
  double skew() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double u) const;

  int64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double t_;  // threshold for the rejection test
};

// Generalized harmonic number H_{k,s} = sum_{i=1..k} i^{-s}, computed with an
// Euler-Maclaurin tail approximation so it is O(1) for large k. Used for
// analytic LRU/Zipf hit-rate curves (fraction of accesses covered by the k
// most popular of n items).
double GeneralizedHarmonic(int64_t k, double s);

// Fraction of a Zipf(s) access stream over n items that falls on the top k
// items: H_{k,s} / H_{n,s}. This is the classic IRM approximation of the LRU
// hit rate with capacity k. Returns a value in [0, 1].
double ZipfHeadFraction(int64_t n, int64_t k, double s);

}  // namespace defl

#endif  // SRC_COMMON_RNG_H_
