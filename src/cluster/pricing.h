// Pricing models for deflatable VMs (the paper's §8 "Pricing" discussion):
//   * flat-discount -- deflatable/preemptible VMs billed per VM-hour at a
//     deep discount off on-demand, regardless of what they actually got
//     (today's spot model);
//   * resource-as-a-service (RaaS, Agmon Ben-Yehuda et al.) -- billed for
//     the resources actually allocated: deflated hours cost less.
// The report compares provider revenue and the customer's effective cost per
// *useful* CPU-hour, charging preempted customers for the work they lose.
#ifndef SRC_CLUSTER_PRICING_H_
#define SRC_CLUSTER_PRICING_H_

#include <cstdint>

namespace defl {

// Accumulated by the trace-driven cluster simulation.
struct UsageSummary {
  double low_pri_vm_hours = 0.0;            // wall-clock existence
  double low_pri_nominal_cpu_hours = 0.0;   // at nominal VM sizes
  double low_pri_effective_cpu_hours = 0.0; // actually backed (post-deflation)
  double high_pri_cpu_hours = 0.0;
  int64_t preemptions = 0;
};

struct PricingModel {
  double on_demand_cpu_hour = 0.05;    // $ per vCPU-hour (memory bundled)
  double preemptible_discount = 0.75;  // spot-style: ~4x cheaper
  double deflatable_discount = 0.65;   // deflatable VMs priced slightly higher
                                       // (they are more useful, Section 8)
  // Work a customer loses per preemption, charged at the on-demand rate
  // (checkpoint gap + restart, in CPU-hours).
  double preemption_loss_cpu_hours = 2.0;
};

struct RevenueReport {
  double provider_revenue = 0.0;       // $ from low-priority capacity
  double customer_cost = 0.0;          // $ paid by low-priority customers
  double customer_loss = 0.0;          // $ equivalent of disruption losses
  // (cost + loss) / effective CPU-hours actually received.
  double effective_cost_per_cpu_hour = 0.0;
};

// Deflatable VMs at a flat per-VM-hour discount (nominal size billed).
RevenueReport PriceDeflatableFlat(const UsageSummary& usage, const PricingModel& model);

// Deflatable VMs billed per allocated resource-hour (RaaS).
RevenueReport PriceDeflatableRaaS(const UsageSummary& usage, const PricingModel& model);

// Conventional preemptible VMs (flat discount + preemption losses).
RevenueReport PricePreemptible(const UsageSummary& usage, const PricingModel& model);

}  // namespace defl

#endif  // SRC_CLUSTER_PRICING_H_
