#include "src/common/sim_options.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

namespace defl {
namespace {

Result<std::vector<std::string>> ParseArgs(SimOptionsParser& options,
                                           std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return options.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(SimOptionsTest, SharedFlagsParseIntoCommon) {
  SimOptionsParser options("a test tool");
  ASSERT_TRUE(ParseArgs(options, {"--metrics-out=m.json", "--trace-out=t.jsonl",
                                  "--fault-plan=f.plan"})
                  .ok());
  EXPECT_EQ(options.common().metrics_out, "m.json");
  EXPECT_EQ(options.common().trace_out, "t.jsonl");
  EXPECT_EQ(options.common().fault_plan, "f.plan");
}

TEST(SimOptionsTest, ToolSpecificFlagsRegisterAlongside) {
  SimOptionsParser options("a test tool");
  int64_t workers = 4;
  options.flags().AddInt("workers", "worker count", &workers);
  ASSERT_TRUE(ParseArgs(options, {"--workers=9", "--metrics-out=m.json"}).ok());
  EXPECT_EQ(workers, 9);
  EXPECT_EQ(options.common().metrics_out, "m.json");
}

TEST(SimOptionsTest, SharedFlagsAppearFirstInHelp) {
  SimOptionsParser options("my program banner");
  int64_t workers = 4;
  options.flags().AddInt("workers", "worker count", &workers);
  const auto result = ParseArgs(options, {"--help"});
  ASSERT_FALSE(result.ok());
  const std::string& usage = result.error();
  EXPECT_NE(usage.find("my program banner"), std::string::npos);
  const size_t metrics_pos = usage.find("--metrics-out");
  const size_t workers_pos = usage.find("--workers");
  ASSERT_NE(metrics_pos, std::string::npos);
  ASSERT_NE(workers_pos, std::string::npos);
  EXPECT_LT(metrics_pos, workers_pos);
}

TEST(SimOptionsTest, InheritsParserStrictness) {
  SimOptionsParser options("a test tool");
  // Duplicates and near-miss names fail the same way plain FlagParser does.
  EXPECT_FALSE(
      ParseArgs(options, {"--metrics-out=a.json", "--metrics-out=b.json"}).ok());
  const auto result = ParseArgs(options, {"--metrics-uot=a.json"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("did you mean --metrics-out?"), std::string::npos)
      << result.error();
}

TEST(SimOptionsTest, RejectFlagCombinationWording) {
  const Result<bool> both = RejectFlagCombination(
      "trace-file", true, "save-trace", true, "nothing new to save");
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.error(),
            "--trace-file and --save-trace cannot be combined "
            "(nothing new to save)");
  EXPECT_TRUE(RejectFlagCombination("a", true, "b", false, "r").ok());
  EXPECT_TRUE(RejectFlagCombination("a", false, "b", true, "r").ok());
  EXPECT_TRUE(RejectFlagCombination("a", false, "b", false, "r").ok());
}

TEST(WorkloadSpecTest, ParsesFullSpecWithCommentsAndProvenance) {
  const std::string text =
      "# interactive scenario\n"
      "load = 1.8          # peak-mean target\n"
      "duration-h = 24\r\n"
      "diurnal = on\n"
      "diurnal-period-h=12\n"
      "\n"
      "interactive = true\n"
      "slo-p99-ms = 80\n"
      "slo-policy = uniform\n";
  const Result<WorkloadSpec> parsed = ParseWorkloadSpec(text, "spec.workload");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const WorkloadSpec& spec = parsed.value();
  EXPECT_DOUBLE_EQ(spec.load, 1.8);
  EXPECT_DOUBLE_EQ(spec.duration_h, 24.0);
  EXPECT_TRUE(spec.diurnal);
  EXPECT_DOUBLE_EQ(spec.diurnal_period_h, 12.0);
  EXPECT_TRUE(spec.interactive);
  EXPECT_DOUBLE_EQ(spec.slo_p99_ms, 80.0);
  EXPECT_EQ(spec.slo_policy, "uniform");
  // Untouched keys keep their defaults and record no provenance.
  EXPECT_DOUBLE_EQ(spec.low_pri_fraction, 0.6);
  EXPECT_FALSE(spec.Has("low-pri-fraction"));
  // Provenance carries the 1-based source line of each set key.
  EXPECT_EQ(spec.provenance.at("load"), 2);
  EXPECT_EQ(spec.provenance.at("slo-policy"), 9);
  EXPECT_TRUE(ValidateWorkloadSpec(spec, "spec.workload").ok());
}

TEST(WorkloadSpecTest, ParserRejectionsCarryLineNumbers) {
  const struct {
    const char* text;
    const char* want;
  } cases[] = {
      {"load 1.8\n", "spec:1: expected 'key = value'"},
      {"load = 1.8\n= 2\n", "spec:2: setting has no key before '='"},
      {"load =\n", "spec:1: 'load' has no value"},
      {"load = fast\n", "spec:1: 'load': bad number 'fast'"},
      {"diurnal = maybe\n", "spec:1: 'diurnal': bad boolean 'maybe'"},
      {"seed = -3\n", "spec:1: 'seed': bad unsigned integer '-3'"},
      {"capacity = 5\n", "spec:1: unknown key 'capacity'"},
      {"load = 1\nload = 2\n",
       "spec:2: duplicate key 'load' (first set on line 1)"},
      {"# only comments\n\n", "spec: workload spec has no settings"},
  };
  for (const auto& c : cases) {
    const Result<WorkloadSpec> parsed = ParseWorkloadSpec(c.text, "spec");
    ASSERT_FALSE(parsed.ok()) << c.text;
    EXPECT_EQ(parsed.error().find(c.want), 0u)
        << "for input <" << c.text << ">: " << parsed.error();
  }
}

TEST(WorkloadSpecTest, ValidationOwnsPairwiseExclusions) {
  // A replayed trace excludes the diurnal generator, with the message citing
  // the offending source lines.
  const Result<WorkloadSpec> spec =
      ParseWorkloadSpec("trace-file = t.csv\ndiurnal = on\n", "spec");
  ASSERT_TRUE(spec.ok()) << spec.error();
  const Result<bool> valid = ValidateWorkloadSpec(spec.value(), "spec");
  ASSERT_FALSE(valid.ok());
  EXPECT_EQ(valid.error(),
            "spec:1: 'trace-file' and spec:2: 'diurnal' cannot be combined "
            "(a replayed trace carries its own arrival times)");

  // Arrival knobs without the generator are a gating error...
  const Result<WorkloadSpec> orphan =
      ParseWorkloadSpec("burst-multiplier = 3\n", "spec");
  ASSERT_TRUE(orphan.ok());
  const Result<bool> orphan_valid = ValidateWorkloadSpec(orphan.value(), "spec");
  ASSERT_FALSE(orphan_valid.ok());
  EXPECT_NE(orphan_valid.error().find("requires diurnal"), std::string::npos);

  // ... and so are SLO knobs without the interactive mix.
  const Result<WorkloadSpec> slo =
      ParseWorkloadSpec("slo-p99-ms = 50\n", "spec");
  ASSERT_TRUE(slo.ok());
  const Result<bool> slo_valid = ValidateWorkloadSpec(slo.value(), "spec");
  ASSERT_FALSE(slo_valid.ok());
  EXPECT_EQ(slo_valid.error(), "spec:1: 'slo-p99-ms' requires interactive");
}

TEST(WorkloadSpecTest, FlagBuiltSpecsKeepFlagWording) {
  // Provenance line 0 marks a flag-built setting; validation then words the
  // error with the --flag spelling instead of a source line.
  WorkloadSpec spec;
  spec.interactive = false;
  spec.slo_p99_ms = 50.0;
  spec.provenance.emplace("slo-p99-ms", 0);
  const Result<bool> valid = ValidateWorkloadSpec(spec, "<flags>");
  ASSERT_FALSE(valid.ok());
  EXPECT_EQ(valid.error(), "--slo-p99-ms requires interactive");
}

TEST(WorkloadSpecTest, ValidationRangeChecks) {
  const struct {
    const char* text;
    const char* want;
  } cases[] = {
      {"load = 0\n", "must be positive"},
      {"low-pri-fraction = 1.5\n", "must be in [0, 1]"},
      {"diurnal = on\ndiurnal-amplitude = -0.1\n", "must be in [0, 1]"},
      {"interactive = on\nslo-p99-ms = 0\n", "must be positive"},
      {"interactive = on\nslo-policy = aggressive\n",
       "must be 'slo' or 'uniform' (got 'aggressive')"},
      {"interactive = on\nrate-amplitude = 2\n", "must be in [0, 1]"},
      {"interactive = on\nrate-period-h = 0\n", "must be positive"},
  };
  for (const auto& c : cases) {
    const Result<WorkloadSpec> parsed = ParseWorkloadSpec(c.text, "spec");
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    const Result<bool> valid = ValidateWorkloadSpec(parsed.value(), "spec");
    ASSERT_FALSE(valid.ok()) << c.text;
    EXPECT_NE(valid.error().find(c.want), std::string::npos)
        << "for input <" << c.text << ">: " << valid.error();
  }
}

}  // namespace
}  // namespace defl
