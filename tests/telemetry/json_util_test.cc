#include "src/telemetry/json_util.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "src/telemetry/metrics.h"
#include "src/telemetry/event_trace.h"

namespace defl {
namespace {

// Minimal strict JSON parser: accepts exactly the RFC 8259 grammar (objects,
// arrays, strings with escapes, numbers, true/false/null) and nothing else.
// In particular the bare `nan`/`inf` tokens printf produces for non-finite
// doubles are syntax errors here -- which is the point: everything the
// telemetry layer dumps must survive a parser this strict.
class StrictJsonParser {
 public:
  explicit StrictJsonParser(const std::string& text) : text_(text) {}

  bool Parse() {
    pos_ = 0;
    SkipWs();
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();  // trailing garbage is an error
  }

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control byte inside a string
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!Digits()) {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!Digits()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!Digits()) {
        return false;
      }
    }
    return pos_ > start;
  }

  bool Digits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return false;
      }
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool StrictParse(const std::string& text) { return StrictJsonParser(text).Parse(); }

TEST(StrictJsonParserTest, SelfCheck) {
  EXPECT_TRUE(StrictParse("{\"a\": [1, -2.5e3, null, true, \"x\\n\"]}"));
  EXPECT_FALSE(StrictParse("{\"a\": nan}"));
  EXPECT_FALSE(StrictParse("{\"a\": inf}"));
  EXPECT_FALSE(StrictParse("{\"a\": -inf}"));
  EXPECT_FALSE(StrictParse("{\"a\": 1} trailing"));
  EXPECT_FALSE(StrictParse("{\"a\": .5}"));
}

TEST(JsonUtilTest, FiniteNumbersRoundTripAtFullPrecision) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(-1.5), "-1.5");
  EXPECT_EQ(JsonNumber(0.1), "0.10000000000000001");  // %.17g, deterministic
}

TEST(JsonUtilTest, NonFiniteNumbersRenderAsNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonUtilTest, StringEscapesQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(JsonString("plain"), "\"plain\"");
  EXPECT_EQ(JsonString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonString("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
  EXPECT_EQ(JsonString(std::string("a\x01z")), "\"a\\u0001z\"");
  EXPECT_TRUE(StrictParse(JsonString(std::string("q\x02\x1f\n\"\\"))));
}

TEST(JsonUtilTest, MetricsDumpWithNonFiniteGaugeIsStrictlyValidJson) {
  MetricsRegistry registry;
  registry.Set(registry.Gauge("poisoned/not_a_number"),
               std::numeric_limits<double>::quiet_NaN());
  registry.Set(registry.Gauge("poisoned/unbounded"),
               std::numeric_limits<double>::infinity());
  registry.Set(registry.Gauge("healthy"), 42.0);
  std::ostringstream os;
  registry.DumpJson(os);
  const std::string dump = os.str();
  EXPECT_TRUE(StrictParse(dump)) << dump;
  EXPECT_NE(dump.find("null"), std::string::npos);
  EXPECT_EQ(dump.find("nan"), std::string::npos);
  EXPECT_EQ(dump.find("inf"), std::string::npos);
}

TEST(JsonUtilTest, TraceDumpWithNonFiniteVectorIsStrictlyValidJsonl) {
  EventTrace trace;
  ResourceVector poisoned(std::numeric_limits<double>::quiet_NaN(), 1024.0,
                          std::numeric_limits<double>::infinity(), 10.0);
  trace.RecordAt(1.0, TraceEventKind::kDeflation, CascadeLayer::kHypervisor, 3, 1,
                 poisoned, ResourceVector::Zero(), 1);
  trace.RecordAt(2.0, TraceEventKind::kPlacement, CascadeLayer::kNone, 4, 2,
                 ResourceVector(1.0, 2.0, 3.0, 4.0), ResourceVector::Zero(), 1);
  std::ostringstream os;
  trace.DumpJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(StrictParse(line)) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

}  // namespace
}  // namespace defl
