// spark_sim: command-line driver for the Spark deflation experiments.
//
// Runs one workload under one reclamation approach with configurable
// deflation fraction and timing, and reports the makespan, the normalized
// slowdown, and what the Section 4.1 policy decided.
//
// Examples:
//   spark_sim --workload=als --approach=cascade --fraction=0.5
//   spark_sim --workload=cnn --approach=preemption --fraction=0.25
//   spark_sim --workload=kmeans --approach=self --fraction=0.5 --at-progress=0.3
//   spark_sim --workload=als --metrics-out=metrics.json --trace-out=events.jsonl
//   spark_sim --workload=als --fault-plan=examples/faults_basic.plan
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "src/common/atomic_file.h"
#include "src/common/sim_options.h"
#include "src/faults/fault_injector.h"
#include "src/spark/experiment.h"
#include "src/telemetry/telemetry.h"

using namespace defl;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "als";
  std::string approach_name = "cascade";
  double fraction = 0.5;
  double at_progress = 0.5;
  double scale = 1.0;
  int64_t workers = 8;

  SimOptionsParser options("spark_sim: Spark workloads under resource deflation");
  FlagParser& parser = options.flags();
  parser.AddString("workload", "als | kmeans | cnn | rnn", &workload_name);
  parser.AddString("approach", "cascade | self | vm-level | preemption",
                   &approach_name);
  parser.AddDouble("fraction", "deflation fraction of every worker", &fraction);
  parser.AddDouble("at-progress", "job progress at which pressure hits", &at_progress);
  parser.AddDouble("scale", "workload size multiplier", &scale);
  parser.AddInt("workers", "number of worker VMs", &workers);
  const Result<std::vector<std::string>> parsed = options.Parse(argc, argv);
  if (!parsed.ok()) {
    return Fail(parsed.error());
  }
  const std::string& metrics_out = options.common().metrics_out;
  const std::string& trace_out = options.common().trace_out;
  const std::string& fault_plan_file = options.common().fault_plan;

  SparkWorkload workload;
  if (workload_name == "als") {
    workload = MakeAlsWorkload(scale);
  } else if (workload_name == "kmeans") {
    workload = MakeKmeansWorkload(scale);
  } else if (workload_name == "cnn") {
    workload = MakeCnnWorkload(scale);
  } else if (workload_name == "rnn") {
    workload = MakeRnnWorkload(scale);
  } else {
    return Fail("unknown --workload '" + workload_name + "'");
  }

  SparkExperimentConfig config;
  config.num_workers = static_cast<int>(workers);
  config.deflation_fraction = fraction;
  config.deflate_at_progress = at_progress;
  if (approach_name == "cascade") {
    config.approach = SparkReclamationApproach::kCascadePolicy;
  } else if (approach_name == "self") {
    config.approach = SparkReclamationApproach::kSelfDeflation;
  } else if (approach_name == "vm-level") {
    config.approach = SparkReclamationApproach::kVmLevel;
  } else if (approach_name == "preemption") {
    config.approach = SparkReclamationApproach::kPreemption;
  } else {
    return Fail("unknown --approach '" + approach_name + "'");
  }

  // The baseline run stays untelemetered so only the measured run's events
  // land in the export.
  const double baseline = SparkBaselineMakespan(workload, config);
  TelemetryContext telemetry;
  telemetry.trace().set_enabled(!trace_out.empty());
  config.telemetry = &telemetry;
  std::unique_ptr<FaultInjector> injector;
  if (!fault_plan_file.empty()) {
    Result<FaultPlan> plan = LoadFaultPlanFile(fault_plan_file);
    if (!plan.ok()) {
      return Fail("cannot load fault plan: " + plan.error());
    }
    injector = std::make_unique<FaultInjector>(std::move(plan.value()));
    injector->AttachTelemetry(&telemetry);
    config.faults = injector.get();
    std::printf("injecting faults from %s\n", fault_plan_file.c_str());
  }
  const SparkExperimentResult result = RunSparkExperiment(workload, config);
  if (!result.completed) {
    return Fail("job did not complete within the simulation limit");
  }

  if (!metrics_out.empty()) {
    std::ostringstream os;
    telemetry.metrics().DumpJson(os);
    os << "\n";
    const Result<bool> wrote = WriteFileAtomic(metrics_out, os.str());
    if (!wrote.ok()) {
      return Fail("cannot write --metrics-out: " + wrote.error());
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    std::ostringstream os;
    telemetry.trace().DumpJsonl(os);
    const Result<bool> wrote = WriteFileAtomic(trace_out, os.str());
    if (!wrote.ok()) {
      return Fail("cannot write --trace-out: " + wrote.error());
    }
    std::printf("wrote %zu trace events to %s\n", telemetry.trace().size(),
                trace_out.c_str());
  }

  std::printf("workload      %s (x%.2f scale, %lld workers)\n", workload.name.c_str(),
              scale, static_cast<long long>(workers));
  std::printf("pressure      %.0f%% of every worker at %.0f%% progress (%s)\n",
              fraction * 100.0, at_progress * 100.0, approach_name.c_str());
  std::printf("baseline      %.1f s undisturbed\n", baseline);
  std::printf("measured      %.1f s (%.2fx normalized running time)\n",
              result.makespan_s, result.makespan_s / baseline);
  if (config.approach == SparkReclamationApproach::kCascadePolicy &&
      result.deflation_applied) {
    std::printf("policy        chose %s (T_vm=%.2f, T_self=%.2f, r=%.2f)\n",
                SparkDeflationChoiceName(result.decision.choice),
                result.decision.t_vm_factor, result.decision.t_self_factor,
                result.decision.r_used);
  }
  std::printf("disruption    %ld tasks killed, %ld recomputed, %ld rollbacks\n",
              result.tasks_killed, result.recomputed_tasks, result.rollbacks);
  return 0;
}
