#include "src/resources/resource_vector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace defl {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kDiskBw:
      return "disk_bw";
    case ResourceKind::kNetBw:
      return "net_bw";
  }
  return "?";
}

ResourceVector ResourceVector::operator+(const ResourceVector& o) const {
  ResourceVector r = *this;
  r += o;
  return r;
}

ResourceVector ResourceVector::operator-(const ResourceVector& o) const {
  ResourceVector r = *this;
  r -= o;
  return r;
}

ResourceVector ResourceVector::operator*(double s) const {
  ResourceVector r;
  for (size_t i = 0; i < v_.size(); ++i) {
    r.v_[i] = v_[i] * s;
  }
  return r;
}

ResourceVector ResourceVector::operator/(double s) const { return *this * (1.0 / s); }

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (size_t i = 0; i < v_.size(); ++i) {
    v_[i] += o.v_[i];
  }
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (size_t i = 0; i < v_.size(); ++i) {
    v_[i] -= o.v_[i];
  }
  return *this;
}

ResourceVector ResourceVector::Min(const ResourceVector& o) const {
  ResourceVector r;
  for (size_t i = 0; i < v_.size(); ++i) {
    r.v_[i] = std::min(v_[i], o.v_[i]);
  }
  return r;
}

ResourceVector ResourceVector::Max(const ResourceVector& o) const {
  ResourceVector r;
  for (size_t i = 0; i < v_.size(); ++i) {
    r.v_[i] = std::max(v_[i], o.v_[i]);
  }
  return r;
}

ResourceVector ResourceVector::ClampNonNegative() const {
  return Max(ResourceVector::Zero());
}

ResourceVector ResourceVector::Scale(const ResourceVector& fractions) const {
  ResourceVector r;
  for (size_t i = 0; i < v_.size(); ++i) {
    r.v_[i] = v_[i] * fractions.v_[i];
  }
  return r;
}

ResourceVector ResourceVector::SafeDivide(const ResourceVector& o) const {
  ResourceVector r;
  for (size_t i = 0; i < v_.size(); ++i) {
    r.v_[i] = o.v_[i] != 0.0 ? v_[i] / o.v_[i] : 0.0;
  }
  return r;
}

bool ResourceVector::AllLeq(const ResourceVector& o, double eps) const {
  for (size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > o.v_[i] + eps) {
      return false;
    }
  }
  return true;
}

bool ResourceVector::AnyPositive(double eps) const {
  for (const double x : v_) {
    if (x > eps) {
      return true;
    }
  }
  return false;
}

double ResourceVector::Dot(const ResourceVector& o) const {
  double d = 0.0;
  for (size_t i = 0; i < v_.size(); ++i) {
    d += v_[i] * o.v_[i];
  }
  return d;
}

double ResourceVector::Norm() const { return std::sqrt(Dot(*this)); }

double ResourceVector::MaxComponent() const {
  return *std::max_element(v_.begin(), v_.end());
}

double ResourceVector::MinComponent() const {
  return *std::min_element(v_.begin(), v_.end());
}

double ResourceVector::Sum() const {
  double s = 0.0;
  for (const double x : v_) {
    s += x;
  }
  return s;
}

double ResourceVector::CosineSimilarity(const ResourceVector& a, const ResourceVector& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  // Degenerate vectors have no direction; define their similarity as 0.
  // Guard the PRODUCT, not the factors: two subnormal-but-nonzero norms can
  // underflow to denom == 0.0, and x/0.0 would leak an inf/NaN fitness into
  // the placement tie-breaks.
  const double denom = na * nb;
  if (denom == 0.0) {
    return 0.0;
  }
  return a.Dot(b) / denom;
}

std::string ResourceVector::ToString() const {
  std::ostringstream os;
  os << "(cpu=" << cpu() << ", mem=" << memory_mb() << "MB, disk=" << disk_bw()
     << "MB/s, net=" << net_bw() << "MB/s)";
  return os.str();
}

}  // namespace defl
