// Execution-based memcached simulation: serves an actual Zipf GET stream
// against the real LruCache, with guest-kernel paging simulated as a second
// LRU (of resident pages) rather than computed analytically. Used to
// validate MemcachedModel's closed-form throughput/hit-rate curves against
// genuine cache and paging dynamics -- the two share no formulas.
#ifndef SRC_APPS_MEMCACHED_SIM_H_
#define SRC_APPS_MEMCACHED_SIM_H_

#include <cstdint>

#include "src/apps/memcached.h"

namespace defl {

struct SimulatedMemcachedResult {
  int64_t requests = 0;
  int64_t hits = 0;
  int64_t swap_stalls = 0;  // hits that had to page the object in
  double measured_hit_rate = 0.0;
  double measured_swap_fraction = 0.0;  // of hits
  // Successful GETs/s (thousands), saturation throughput with one
  // event-loop worker per visible core.
  double measured_kgets = 0.0;
};

// Serves `num_requests` GETs (after a warmup of the same length) through a
// real LRU of the configured capacity under allocation `alloc`. Keys follow
// Zipf(config.zipf_s) over config.num_keys. Intended for scaled-down
// configs (e.g. ~10^5 keys); memory use is O(cache items).
SimulatedMemcachedResult RunSimulatedMemcached(const MemcachedConfig& config,
                                               const EffectiveAllocation& alloc,
                                               int64_t num_requests, uint64_t seed);

}  // namespace defl

#endif  // SRC_APPS_MEMCACHED_SIM_H_
