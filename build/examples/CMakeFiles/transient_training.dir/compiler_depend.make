# Empty compiler generated dependencies file for transient_training.
# This may be replaced when dependencies are built.
