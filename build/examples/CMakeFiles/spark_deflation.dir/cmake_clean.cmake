file(REMOVE_RECURSE
  "CMakeFiles/spark_deflation.dir/spark_deflation.cpp.o"
  "CMakeFiles/spark_deflation.dir/spark_deflation.cpp.o.d"
  "spark_deflation"
  "spark_deflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_deflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
