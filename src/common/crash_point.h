// Named crash points for durability testing: deliberate process death at
// precise moments inside the persistence machinery (mid-WAL-append, after a
// checkpoint marker but before its snapshot, after the tmp write but before
// the rename, ...). The chaos CI job and the kill-recovery property tests
// arm a point and count, then assert that recovery from whatever the dying
// process left behind is byte-identical to an uninterrupted run.
//
// A point is armed either programmatically (ArmCrashPointForTest, used by
// fork()ed test children) or through the environment:
//
//   DEFL_CRASH_POINT=<name>:<count>   # die at the <count>-th hit of <name>
//
// Death is a real SIGKILL (no atexit handlers, no stream flushing) -- the
// same signal the chaos supervisor delivers, so both paths exercise the
// exact "power was cut here" recovery contract. Unarmed, every hook is one
// predictable branch; production builds keep them.
#ifndef SRC_COMMON_CRASH_POINT_H_
#define SRC_COMMON_CRASH_POINT_H_

#include <cstdint>

namespace defl {

// Counts a hit of the named point; returns true when this hit is the armed,
// fatal one. Callers that need to die mid-operation (e.g. after writing half
// a WAL record) do the partial work themselves and then call CrashPointKill.
bool CrashPointFires(const char* name);

// Dies by SIGKILL, immediately. Never returns.
[[noreturn]] void CrashPointKill();

// The common shape: die right here when armed.
inline void CrashPoint(const char* name) {
  if (CrashPointFires(name)) {
    CrashPointKill();
  }
}

// Arms `name` to fire on its `countdown`-th hit from now (1 = next hit).
// Overrides any DEFL_CRASH_POINT environment arming. Intended for test
// children between fork() and the code under test.
void ArmCrashPointForTest(const char* name, int64_t countdown);

// Disarms everything (tests that reuse a process).
void DisarmCrashPointsForTest();

}  // namespace defl

#endif  // SRC_COMMON_CRASH_POINT_H_
