file(REMOVE_RECURSE
  "CMakeFiles/overcommit_test.dir/hypervisor/overcommit_test.cc.o"
  "CMakeFiles/overcommit_test.dir/hypervisor/overcommit_test.cc.o.d"
  "overcommit_test"
  "overcommit_test.pdb"
  "overcommit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overcommit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
