#include "src/core/protocol.h"

#include <gtest/gtest.h>

#include "src/core/cascade.h"

namespace defl {
namespace {

TEST(ProtocolCodecTest, RoundTripsAllKinds) {
  for (const DeflationMessageKind kind :
       {DeflationMessageKind::kDeflateRequest, DeflationMessageKind::kDeflateResponse,
        DeflationMessageKind::kReinflateNotice, DeflationMessageKind::kFootprintQuery,
        DeflationMessageKind::kFootprintReport}) {
    DeflationMessage message;
    message.kind = kind;
    message.vm_id = 42;
    message.sequence = 7;
    message.amount = ResourceVector(2.5, 8192.0, 50.0, 625.0);
    const Result<DeflationMessage> decoded = DecodeMessage(EncodeMessage(message));
    ASSERT_TRUE(decoded.ok()) << DeflationMessageKindName(kind) << ": "
                              << decoded.error();
    EXPECT_EQ(decoded.value().kind, kind);
    EXPECT_EQ(decoded.value().vm_id, 42);
    EXPECT_EQ(decoded.value().sequence, 7);
    EXPECT_EQ(decoded.value().amount, message.amount);
  }
}

TEST(ProtocolCodecTest, RejectsMalformedInput) {
  EXPECT_FALSE(DecodeMessage("").ok());
  EXPECT_FALSE(DecodeMessage("http/1.1 GET /deflate").ok());
  EXPECT_FALSE(DecodeMessage("defl/1 bogus-kind vm=1 seq=1 cpu=0 mem=0 disk=0 net=0").ok());
  EXPECT_FALSE(DecodeMessage("defl/1 deflate-req vm=1 seq=1 cpu=0 mem=0").ok());
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=1 cpu=x mem=0 disk=0 net=0").ok());
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=1 mem=0 cpu=0 disk=0 net=0").ok())
      << "field order is part of the format";
  EXPECT_FALSE(
      DecodeMessage("defl/1 deflate-req vm=1 seq=1 cpu=0 mem=0 disk=0 net=0 extra=1")
          .ok());
}

TEST(ProtocolCodecTest, EncodingIsStable) {
  DeflationMessage message;
  message.kind = DeflationMessageKind::kDeflateRequest;
  message.vm_id = 3;
  message.sequence = 11;
  message.amount = ResourceVector(2.0, 8192.0, 0.0, 0.0);
  EXPECT_EQ(EncodeMessage(message),
            "defl/1 deflate-req vm=3 seq=11 cpu=2 mem=8192 disk=0 net=0");
}

// A local agent behind the wire behaves like the in-process agent.
class CountingAgent : public DeflationAgent {
 public:
  ResourceVector SelfDeflate(const ResourceVector& target) override {
    ++deflates_;
    freed_ = target * 0.5;
    footprint_mb_ -= freed_.memory_mb();
    return freed_;
  }
  void OnReinflate(const ResourceVector& added) override {
    ++reinflates_;
    footprint_mb_ += added.memory_mb();
  }
  double MemoryFootprintMb() const override { return footprint_mb_; }

  int deflates_ = 0;
  int reinflates_ = 0;
  double footprint_mb_ = 10000.0;
  ResourceVector freed_;
};

TEST(ProtocolEndToEndTest, ProxySpeaksToEndpoint) {
  CountingAgent real_agent;
  AgentEndpoint endpoint(5, &real_agent);
  RemoteAgentProxy proxy(5, [&endpoint](const std::string& line) {
    return endpoint.Handle(line);
  });

  const ResourceVector freed = proxy.SelfDeflate(ResourceVector(4.0, 8000.0));
  EXPECT_EQ(real_agent.deflates_, 1);
  EXPECT_EQ(freed, ResourceVector(2.0, 4000.0));
  EXPECT_DOUBLE_EQ(proxy.MemoryFootprintMb(), real_agent.MemoryFootprintMb());
  proxy.OnReinflate(ResourceVector(0.0, 4000.0));
  EXPECT_EQ(real_agent.reinflates_, 1);
  EXPECT_DOUBLE_EQ(real_agent.footprint_mb_, 10000.0);
  EXPECT_GE(proxy.messages_sent(), 3);
}

TEST(ProtocolEndToEndTest, CascadeWorksThroughTheWire) {
  // The full cascade with a remote agent gives the same outcome as with the
  // in-process agent.
  CountingAgent remote_backend;
  AgentEndpoint endpoint(1, &remote_backend);
  RemoteAgentProxy proxy(1, [&endpoint](const std::string& line) {
    return endpoint.Handle(line);
  });

  VmSpec spec;
  spec.name = "wire-vm";
  spec.size = ResourceVector(4.0, 16384.0, 100.0, 1000.0);
  Vm vm(1, spec);
  vm.guest_os().set_app_used_mb(remote_backend.MemoryFootprintMb());

  CascadeController controller(DeflationMode::kCascade);
  const DeflationOutcome out =
      controller.Deflate(vm, &proxy, ResourceVector(0.0, 8000.0));
  EXPECT_EQ(remote_backend.deflates_, 1);
  EXPECT_DOUBLE_EQ(out.app_freed.memory_mb(), 4000.0);
  EXPECT_TRUE(out.TargetMet());
  // Guest accounting reflects the remote agent's reported footprint.
  EXPECT_DOUBLE_EQ(vm.guest_os().app_used_mb(), remote_backend.footprint_mb_);
}

TEST(ProtocolRobustnessTest, SilentAgentFreesNothing) {
  RemoteAgentProxy proxy(9, [](const std::string&) { return std::string("garbage"); });
  EXPECT_TRUE(proxy.SelfDeflate(ResourceVector(4.0, 8000.0)).IsZero());
  EXPECT_DOUBLE_EQ(proxy.MemoryFootprintMb(), 0.0);
}

TEST(ProtocolRobustnessTest, EndpointSurvivesGarbageRequests) {
  CountingAgent agent;
  AgentEndpoint endpoint(2, &agent);
  const Result<DeflationMessage> reply = DecodeMessage(endpoint.Handle("not a message"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().sequence, -1);
  EXPECT_TRUE(reply.value().amount.IsZero());
  EXPECT_EQ(agent.deflates_, 0);
}

TEST(ProtocolRobustnessTest, SequenceMismatchTreatedAsFailure) {
  CountingAgent agent;
  AgentEndpoint endpoint(2, &agent);
  // A transport that replays a stale response.
  std::string stale;
  RemoteAgentProxy proxy(2, [&](const std::string& line) {
    if (stale.empty()) {
      stale = endpoint.Handle(line);
      return stale;
    }
    return stale;  // wrong sequence from now on
  });
  EXPECT_FALSE(proxy.SelfDeflate(ResourceVector(1.0, 1000.0)).IsZero());
  EXPECT_TRUE(proxy.SelfDeflate(ResourceVector(1.0, 1000.0)).IsZero());
}

}  // namespace
}  // namespace defl
