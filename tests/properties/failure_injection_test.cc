// Failure injection: hot-unplug may partially fail (Section 3.2.2: "hot
// unplugging of resources may fail or only succeed in partial reclamation").
// The cascade must absorb arbitrary unplug shortfalls by falling through to
// the hypervisor -- targets are still met, safety is preserved -- while the
// OS-only baseline (no fall-through) under-delivers.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/cascade.h"

namespace defl {
namespace {

using FaultCase = std::tuple<double /*flakiness*/, uint64_t /*seed*/,
                             double /*target fraction*/>;

class UnplugFaultTest : public ::testing::TestWithParam<FaultCase> {
 protected:
  static Vm MakeVm(double flakiness, uint64_t seed) {
    VmSpec spec;
    spec.name = "flaky-vm";
    spec.size = ResourceVector(8.0, 32768.0, 400.0, 2500.0);
    GuestOs::Params params;
    params.unplug_flakiness = flakiness;
    params.fault_seed = seed;
    Vm vm(1, spec, params);
    vm.guest_os().set_app_used_mb(12000.0);
    return vm;
  }
};

TEST_P(UnplugFaultTest, CascadeAbsorbsUnplugFailures) {
  const auto [flakiness, seed, fraction] = GetParam();
  Vm vm = MakeVm(flakiness, seed);
  CascadeController controller(DeflationMode::kVmLevel);
  const DeflationOutcome out =
      controller.Deflate(vm, nullptr, vm.size() * fraction);
  // The hypervisor picks up whatever the flaky unplug missed.
  EXPECT_TRUE(out.TargetMet()) << "flakiness " << flakiness << " seed " << seed;
  EXPECT_FALSE(vm.guest_os().UnderOomPressure());
  for (const ResourceKind kind : kAllResources) {
    EXPECT_GE(vm.effective()[kind], -1e-9);
  }
}

class UnplugFaultInjectedTest : public UnplugFaultTest {};

TEST_P(UnplugFaultInjectedTest, OsOnlyUnderDeliversWithoutFallThrough) {
  const auto [flakiness, seed, fraction] = GetParam();
  Vm flaky = MakeVm(flakiness, seed);
  Vm solid = MakeVm(0.0, seed);
  CascadeController controller(DeflationMode::kOsOnly);
  const ResourceVector target(0.0, flaky.size().memory_mb() * fraction);
  const DeflationOutcome flaky_out = controller.Deflate(flaky, nullptr, target);
  const DeflationOutcome solid_out = controller.Deflate(solid, nullptr, target);
  EXPECT_LE(flaky_out.unplugged.memory_mb(), solid_out.unplugged.memory_mb() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnplugFaultTest,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Values(11u, 222u, 3333u),
                       ::testing::Values(0.25, 0.5, 0.75)));

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnplugFaultInjectedTest,
    ::testing::Combine(::testing::Values(0.3, 0.7, 1.0),
                       ::testing::Values(11u, 222u, 3333u),
                       ::testing::Values(0.25, 0.5, 0.75)));

TEST(UnplugFaultRepeatTest, RetriesEventuallyReclaimMore) {
  // A flaky unplug that under-delivers can be retried; cumulative unplug is
  // monotone and bounded by the safe amount.
  VmSpec spec;
  spec.name = "retry-vm";
  spec.size = ResourceVector(4.0, 16384.0);
  GuestOs::Params params;
  params.unplug_flakiness = 0.9;
  params.fault_seed = 99;
  params.kernel_reserve_mb = 0.0;
  params.unplug_efficiency = 1.0;
  Vm vm(1, spec, params);
  vm.guest_os().set_app_used_mb(8192.0);

  double prev_total = 0.0;
  for (int attempt = 0; attempt < 20; ++attempt) {
    vm.guest_os().TryUnplug(ResourceVector(0.0, 8192.0));
    const double total = vm.guest_os().unplugged().memory_mb();
    EXPECT_GE(total, prev_total);
    EXPECT_LE(total, 8192.0 + 1e-9);
    prev_total = total;
  }
  EXPECT_GT(prev_total, 4000.0);  // retries converge toward the safe amount
}

}  // namespace
}  // namespace defl
