// A small Result<T> error type (C++23 std::expected is not available under
// the C++20 toolchain). Operations that can fail at runtime for reasons the
// caller must handle -- e.g. hot-unplug refusing a request, placement finding
// no feasible server -- return Result instead of throwing.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace defl {

struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse:
  //   return Error{"no feasible server"};
  Result(T value) : data_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}   // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace defl

#endif  // SRC_COMMON_RESULT_H_
