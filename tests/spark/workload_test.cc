#include "src/spark/workload.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

void ValidateChain(const SparkWorkload& wl) {
  ASSERT_FALSE(wl.rdds.empty());
  for (size_t i = 0; i < wl.rdds.size(); ++i) {
    const RddDef& rdd = wl.rdds[i];
    EXPECT_EQ(rdd.id, static_cast<RddId>(i));
    EXPECT_LT(rdd.parent, rdd.id) << "lineage must be topologically ordered";
    EXPECT_LT(rdd.parent2, rdd.id) << "join lineage must be topologically ordered";
    EXPECT_GT(rdd.num_partitions, 0);
    EXPECT_GE(rdd.cost_per_partition_s, 0.0);
    if (rdd.parent >= 0 && !rdd.wide) {
      EXPECT_EQ(rdd.num_partitions,
                wl.rdds[static_cast<size_t>(rdd.parent)].num_partitions)
          << "narrow dependencies preserve partitioning";
    }
  }
}

TEST(WorkloadTest, AlsIsShuffleHeavy) {
  const SparkWorkload wl = MakeAlsWorkload();
  ValidateChain(wl);
  EXPECT_FALSE(wl.synchronous);
  int wide = 0;
  for (const RddDef& rdd : wl.rdds) {
    wide += rdd.wide ? 1 : 0;
  }
  // All iteration RDDs shuffle.
  EXPECT_GE(wide, 8);
  // Wide-stage cost dominates: the r heuristic will be high.
  double wide_cost = 0.0;
  for (const RddDef& rdd : wl.rdds) {
    if (rdd.wide) {
      wide_cost += rdd.cost_per_partition_s * rdd.num_partitions;
    }
  }
  EXPECT_GT(wide_cost / wl.TotalCost(), 0.6);
}

TEST(WorkloadTest, KmeansHasShallowLineageAndCheapShuffles) {
  const SparkWorkload wl = MakeKmeansWorkload();
  ValidateChain(wl);
  EXPECT_FALSE(wl.synchronous);
  // Every iteration's map depends directly on the cached input.
  EXPECT_TRUE(wl.rdds.front().cached);
  double wide_cost = 0.0;
  for (const RddDef& rdd : wl.rdds) {
    if (rdd.wide) {
      wide_cost += rdd.cost_per_partition_s * rdd.num_partitions;
      EXPECT_EQ(wl.rdds[static_cast<size_t>(rdd.parent)].parent, 0)
          << "maps hang directly off the cached points";
    }
  }
  EXPECT_LT(wide_cost / wl.TotalCost(), 0.1);
}

TEST(WorkloadTest, TrainingWorkloadsAreSynchronous) {
  for (const SparkWorkload& wl : {MakeCnnWorkload(), MakeRnnWorkload()}) {
    ValidateChain(wl);
    EXPECT_TRUE(wl.synchronous);
    EXPECT_EQ(wl.checkpoint_every_stages, 0);  // no checkpointing by default
  }
}

TEST(WorkloadTest, CheckpointingVariantHasCosts) {
  const SparkWorkload wl = MakeCnnWorkload(1.0, /*with_checkpointing=*/true);
  EXPECT_GT(wl.checkpoint_every_stages, 0);
  EXPECT_GT(wl.checkpoint_cost_s, 0.0);
}

TEST(WorkloadTest, ScaleMultipliesCost) {
  const double base = MakeAlsWorkload(1.0).TotalCost();
  EXPECT_NEAR(MakeAlsWorkload(2.0).TotalCost(), 2.0 * base, 1e-9);
}

TEST(WorkloadTest, TotalCostSumsRdds) {
  SparkWorkload wl;
  wl.rdds.push_back(RddDef{0, "a", -1, -1, false, 4, 2.0, 0.0, false});
  wl.rdds.push_back(RddDef{1, "b", 0, -1, true, 2, 3.0, 0.0, false});
  EXPECT_DOUBLE_EQ(wl.TotalCost(), 4 * 2.0 + 2 * 3.0);
}

}  // namespace
}  // namespace defl
