// Checkpoint/restore for multi-day runs: opens a cluster simulation, runs
// the first third, snapshots it to disk, deliberately throws the live
// session away (standing in for a preemption or a crash), restores from the
// snapshot, and finishes. The restored run's results are byte-identical to
// an uninterrupted run of the same config -- the determinism contract in
// DESIGN.md §11.
#include <cstdio>

#include "src/cluster/sim_session.h"

using namespace defl;

namespace {

ClusterSimConfig DayConfig() {
  ClusterSimConfig config;
  config.num_servers = 24;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 24.0 * 3600.0;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  config.trace.seed = 7;
  config.trace =
      WithTargetLoad(config.trace, 1.5, config.num_servers, config.server_capacity);
  config.cluster.strategy = ReclamationStrategy::kDeflation;
  config.reinflate_period_s = 600.0;
  return config;
}

void Report(const char* label, const ClusterSimResult& r) {
  std::printf("%s launched=%lld preempted=%lld util=%.6f oc=%.6f quality=%.6f\n",
              label, static_cast<long long>(r.counters.launched),
              static_cast<long long>(r.counters.preempted), r.mean_utilization,
              r.mean_overcommitment, r.low_priority_allocation_quality);
}

}  // namespace

int main() {
  const char* snapshot_path = "resumable_sim.snap";

  // The uninterrupted run, for comparison.
  Result<SimSession> batch = SimSession::Open(DayConfig());
  if (!batch.ok()) {
    std::printf("open failed: %s\n", batch.error().c_str());
    return 1;
  }
  const ClusterSimResult uninterrupted = batch.value().Finish();

  // The interrupted run: 8 simulated hours, snapshot, "crash".
  {
    Result<SimSession> session = SimSession::Open(DayConfig());
    session.value().StepUntil(8.0 * 3600.0);
    const Result<bool> saved = session.value().Snapshot(snapshot_path);
    if (!saved.ok()) {
      std::printf("snapshot failed: %s\n", saved.error().c_str());
      return 1;
    }
    std::printf("snapshotted at t=%.0fh after %lld events\n",
                session.value().now() / 3600.0,
                static_cast<long long>(session.value().events_executed()));
  }  // session destroyed here: the process has "died"

  // Days later: restore and finish the remaining 16 hours.
  Result<SimSession> resumed = SimSession::Restore(snapshot_path);
  if (!resumed.ok()) {
    std::printf("restore failed: %s\n", resumed.error().c_str());
    return 1;
  }
  const ClusterSimResult completed = resumed.value().Finish();

  Report("uninterrupted:", uninterrupted);
  Report("kill+restored:", completed);
  const bool identical =
      uninterrupted.counters.launched == completed.counters.launched &&
      uninterrupted.counters.preempted == completed.counters.preempted &&
      uninterrupted.mean_utilization == completed.mean_utilization &&
      uninterrupted.mean_overcommitment == completed.mean_overcommitment &&
      uninterrupted.low_priority_allocation_quality ==
          completed.low_priority_allocation_quality;
  std::printf("results %s\n", identical ? "identical" : "DIVERGED");
  std::remove(snapshot_path);
  return identical ? 0 : 1;
}
