#include "src/apps/mpi.h"

#include <algorithm>
#include <cassert>

namespace defl {

MpiJob::MpiJob(const MpiJobConfig& config)
    : config_(config), agent_(config.footprint_mb_per_vm) {}

double MpiJob::VmRankSpeed(const Vm& vm) const {
  const EffectiveAllocation alloc = vm.allocation();
  const double spec_cpus = vm.size().cpu();
  if (spec_cpus <= 0.0) {
    return 0.0;
  }
  // One rank per nominal vCPU, all runnable every timestep: hot-unplugged
  // CPUs force time-sharing (benign, guest-scheduled), hypervisor capping
  // adds LHP.
  const double rate = CappedParallelRate(spec_cpus, alloc.visible_cpus,
                                         alloc.cpu_capacity, config_.costs);
  double speed = rate / spec_cpus;
  // Memory pressure stalls ranks on swap.
  if (alloc.guest_memory_mb < config_.footprint_mb_per_vm) {
    return 0.0;  // OOM: the rank (and thus the job) dies
  }
  if (alloc.memory_overcommitted()) {
    const double waste = BlindPagingWasteMb(alloc.guest_memory_mb,
                                            alloc.resident_memory_mb,
                                            config_.hv_paging_efficiency);
    const double p_swap = LruSwapHitFraction(
        config_.footprint_mb_per_vm,
        std::max(0.0, alloc.resident_memory_mb - waste), config_.page_zipf_s);
    speed /= 1.0 + config_.swap_stall_penalty * p_swap;
  }
  return std::min(speed, 1.0);
}

double MpiJob::JobSpeed(const std::vector<const Vm*>& vms) const {
  assert(!vms.empty());
  double speed = 1.0;
  for (const Vm* vm : vms) {
    speed = std::min(speed, VmRankSpeed(*vm));
  }
  return speed;
}

}  // namespace defl
