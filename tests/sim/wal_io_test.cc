// WAL framing and torn-tail tolerance (DESIGN.md §13): every record is
// individually checksummed, the reader accepts the longest valid prefix and
// names what was wrong with the first bad byte, and the writer truncates
// that garbage before appending -- so a SIGKILL mid-append can never poison
// the journal.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/atomic_file.h"
#include "src/sim/snapshot_io.h"
#include "src/sim/wal_io.h"

namespace defl {
namespace {

std::string TempPath(const char* tag) {
  return testing::TempDir() + "/wal_io_test_" + tag + ".wal";
}

TEST(WalIoTest, EmptyJournalRoundTrips) {
  const std::string path = TempPath("empty");
  { ASSERT_TRUE(WalWriter::Create(path).ok()); }
  const Result<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().torn);
  EXPECT_EQ(read.value().valid_bytes, EncodeWalHeader().size());
  std::remove(path.c_str());
}

TEST(WalIoTest, RecordsRoundTripWithExactPayloads) {
  const std::string path = TempPath("roundtrip");
  {
    Result<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.error();
    ASSERT_TRUE(writer.value().Append(WalRecord::StepUntil(1234.5)).ok());
    ASSERT_TRUE(writer.value().Append(WalRecord::StepEventsTo(987654)).ok());
    ASSERT_TRUE(writer.value()
                    .Append(WalRecord::Checkpoint(3, 600.0, 4321, 0xfeedULL, 555))
                    .ok());
  }
  const Result<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.error();
  ASSERT_EQ(read.value().records.size(), 3u);
  EXPECT_EQ(read.value().records[0].kind, WalRecordKind::kStepUntil);
  EXPECT_DOUBLE_EQ(read.value().records[0].t_s, 1234.5);
  EXPECT_EQ(read.value().records[1].kind, WalRecordKind::kStepEventsTo);
  EXPECT_EQ(read.value().records[1].target_events, 987654);
  EXPECT_EQ(read.value().records[2].kind, WalRecordKind::kCheckpoint);
  EXPECT_EQ(read.value().records[2].checkpoint_id, 3u);
  EXPECT_DOUBLE_EQ(read.value().records[2].sim_time_s, 600.0);
  EXPECT_EQ(read.value().records[2].events_executed, 4321);
  EXPECT_EQ(read.value().records[2].snapshot_fnv, 0xfeedULL);
  EXPECT_EQ(read.value().records[2].snapshot_size, 555u);
  EXPECT_FALSE(read.value().torn);
  std::remove(path.c_str());
}

TEST(WalIoTest, HeaderProblemsAreHardErrors) {
  EXPECT_FALSE(DecodeWal("").ok());
  EXPECT_FALSE(DecodeWal("DEFLW").ok());  // shorter than the header
  std::string wrong_magic = EncodeWalHeader();
  wrong_magic[0] = 'X';
  EXPECT_FALSE(DecodeWal(wrong_magic).ok());
  std::string wrong_version = EncodeWalHeader();
  wrong_version[8] = 0x7f;  // version field, little-endian
  const Result<WalReadResult> versioned = DecodeWal(wrong_version);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.error().find("version"), std::string::npos);
}

TEST(WalIoTest, TornTailIsTruncatedOnReopen) {
  const std::string path = TempPath("torn");
  {
    Result<WalWriter> writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.error();
    ASSERT_TRUE(writer.value().Append(WalRecord::StepUntil(100.0)).ok());
  }
  // Simulate a crash mid-append: half of the next record reaches the file.
  const std::string frame = EncodeWalRecord(WalRecord::StepUntil(200.0));
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  const uint64_t intact = bytes.value().size();
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(frame.data(), 1, frame.size() / 2, f);
    std::fclose(f);
  }
  const Result<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_TRUE(read.value().torn);
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().valid_bytes, intact);

  // Reattach: the torn bytes are cut, the next append is clean.
  {
    Result<WalWriter> writer = WalWriter::OpenAt(path, read.value().valid_bytes);
    ASSERT_TRUE(writer.ok()) << writer.error();
    ASSERT_TRUE(writer.value().Append(WalRecord::StepUntil(300.0)).ok());
  }
  const Result<WalReadResult> reread = ReadWalFile(path);
  ASSERT_TRUE(reread.ok()) << reread.error();
  EXPECT_FALSE(reread.value().torn);
  ASSERT_EQ(reread.value().records.size(), 2u);
  EXPECT_DOUBLE_EQ(reread.value().records[1].t_s, 300.0);
  std::remove(path.c_str());
}

TEST(WalIoTest, BitFlipStopsTheReaderAtTheDamagedRecord) {
  std::string image = EncodeWalHeader();
  image += EncodeWalRecord(WalRecord::StepUntil(10.0));
  const size_t first_end = image.size();
  image += EncodeWalRecord(WalRecord::StepEventsTo(20));
  image[first_end + 7] = static_cast<char>(image[first_end + 7] ^ 0x10);
  const Result<WalReadResult> read = DecodeWal(image);
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_TRUE(read.value().torn);
  EXPECT_NE(read.value().torn_reason.find("checksum"), std::string::npos);
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().valid_bytes, first_end);
}

// A record whose length field lies about its kind's fixed payload size must
// not pass, even with a checksum computed over the lying bytes.
TEST(WalIoTest, LyingLengthFieldIsRejectedDespiteValidChecksum) {
  std::string frame;
  const std::string payload(16, '\x42');  // kStepUntil really takes 8
  frame.push_back(static_cast<char>(payload.size()));
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);  // kind = kStepUntil
  frame += payload;
  const uint64_t sum = SnapshotFnv1a64(frame.data(), frame.size());
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<char>((sum >> (8 * i)) & 0xff));
  }
  const Result<WalReadResult> read = DecodeWal(EncodeWalHeader() + frame);
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_TRUE(read.value().torn);
  EXPECT_NE(read.value().torn_reason.find("does not match its kind"),
            std::string::npos);
  EXPECT_TRUE(read.value().records.empty());
}

TEST(WalIoTest, UnknownKindIsTornNotCrash) {
  std::string frame;
  frame.push_back(8);
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(9);  // no such kind
  frame += std::string(8, '\0');
  const uint64_t sum = SnapshotFnv1a64(frame.data(), frame.size());
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<char>((sum >> (8 * i)) & 0xff));
  }
  const Result<WalReadResult> read = DecodeWal(EncodeWalHeader() + frame);
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_TRUE(read.value().torn);
  EXPECT_NE(read.value().torn_reason.find("unknown record kind"),
            std::string::npos);
}

TEST(WalIoTest, OpenAtRejectsPositionsInsideTheHeader) {
  const std::string path = TempPath("openat");
  { ASSERT_TRUE(WalWriter::Create(path).ok()); }
  EXPECT_FALSE(WalWriter::OpenAt(path, 3).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace defl
