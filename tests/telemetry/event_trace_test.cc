#include "src/telemetry/event_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

TEST(EventTraceTest, RecordAppendsWithClockStamp) {
  EventTrace trace;
  double now = 42.0;
  trace.SetClock([&now] { return now; });
  trace.Record(TraceEventKind::kDeflation, CascadeLayer::kNone, /*vm=*/3,
               /*server=*/1, ResourceVector(1.0, 2.0, 3.0, 4.0),
               ResourceVector(0.5, 1.0, 1.5, 2.0), /*outcome=*/1);
  now = 50.0;
  trace.Record(TraceEventKind::kCascadeStage, CascadeLayer::kApplication, 3, -1,
               ResourceVector(), ResourceVector(), 0);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.events()[0].time, 42.0);
  EXPECT_DOUBLE_EQ(trace.events()[1].time, 50.0);
  EXPECT_EQ(trace.events()[0].vm, 3);
  EXPECT_EQ(trace.events()[0].server, 1);
  EXPECT_DOUBLE_EQ(trace.events()[0].target.memory_mb(), 2.0);
  EXPECT_DOUBLE_EQ(trace.events()[0].reclaimed.cpu(), 0.5);
  EXPECT_EQ(trace.events()[0].outcome, 1);
}

TEST(EventTraceTest, DisabledTraceRecordsNothing) {
  EventTrace trace;
  trace.set_enabled(false);
  trace.Record(TraceEventKind::kDeflation, CascadeLayer::kNone, 0, 0,
               ResourceVector(), ResourceVector(), 0);
  trace.RecordAt(1.0, TraceEventKind::kDeflation, CascadeLayer::kNone, 0, 0,
                 ResourceVector(), ResourceVector(), 0);
  EXPECT_EQ(trace.size(), 0u);
  trace.set_enabled(true);
  trace.RecordAt(1.0, TraceEventKind::kDeflation, CascadeLayer::kNone, 0, 0,
                 ResourceVector(), ResourceVector(), 0);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(EventTraceTest, CountKindFiltersByKindAndLayer) {
  EventTrace trace;
  for (int i = 0; i < 3; ++i) {
    trace.RecordAt(1.0, TraceEventKind::kCascadeStage, CascadeLayer::kApplication,
                   i, -1, ResourceVector(), ResourceVector(), 0);
  }
  trace.RecordAt(2.0, TraceEventKind::kCascadeStage, CascadeLayer::kHypervisor, 0,
                 -1, ResourceVector(), ResourceVector(), 0);
  trace.RecordAt(3.0, TraceEventKind::kPreemption, CascadeLayer::kNone, 0, 0,
                 ResourceVector(), ResourceVector(), 0);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kCascadeStage), 4);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kCascadeStage, CascadeLayer::kApplication), 3);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kCascadeStage, CascadeLayer::kHypervisor), 1);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kPreemption), 1);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kRollback), 0);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(EventTraceTest, DumpJsonlOneLinePerEventAndDeterministic) {
  auto populate = [](EventTrace& trace) {
    trace.RecordAt(10.0, TraceEventKind::kDeflation, CascadeLayer::kNone, 7, 2,
                   ResourceVector(2.0, 4096.0, 0.0, 0.0),
                   ResourceVector(1.0, 2048.0, 0.0, 0.0), 1);
    trace.RecordAt(11.0, TraceEventKind::kVmLaunch, CascadeLayer::kNone, 8, 2,
                   ResourceVector(), ResourceVector(), 0);
  };
  EventTrace a;
  EventTrace b;
  populate(a);
  populate(b);
  std::ostringstream dump_a;
  std::ostringstream dump_b;
  a.DumpJsonl(dump_a);
  b.DumpJsonl(dump_b);
  EXPECT_EQ(dump_a.str(), dump_b.str());

  const std::string text = dump_a.str();
  size_t lines = 0;
  for (const char c : text) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"kind\": \"deflation\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"vm_launch\""), std::string::npos);
  EXPECT_NE(text.find("\"mem_mb\": 4096"), std::string::npos);
}

TEST(EventTraceTest, KindAndLayerNamesAreStable) {
  // The JSONL schema is consumed by external scripts: renaming an event kind
  // is a breaking change and must be deliberate.
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kCascadeStage), "cascade_stage");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kSparkPolicy), "spark_policy");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kOvercommitEnter),
               "overcommit_enter");
  EXPECT_STREQ(CascadeLayerName(CascadeLayer::kGuestOs), "guest_os");
  EXPECT_STREQ(CascadeLayerName(CascadeLayer::kHypervisor), "hypervisor");
}

TEST(EventTraceTest, ChunkedStorageIndexesAcrossChunkBoundaries) {
  // Records live in arena chunks of TraceEventView::kChunkRecords; indexing
  // and iteration must be seamless across the boundaries.
  EventTrace trace;
  const size_t count = TraceEventView::kChunkRecords * 3 + 17;
  for (size_t i = 0; i < count; ++i) {
    trace.RecordAt(static_cast<double>(i), TraceEventKind::kDeflation,
                   CascadeLayer::kNone, static_cast<int64_t>(i), -1,
                   ResourceVector::Zero(), ResourceVector::Zero(),
                   static_cast<int32_t>(i % 7));
  }
  const TraceEventView view = trace.events();
  ASSERT_EQ(view.size(), count);
  for (const size_t i : {size_t{0}, TraceEventView::kChunkRecords - 1,
                         TraceEventView::kChunkRecords,
                         2 * TraceEventView::kChunkRecords + 5, count - 1}) {
    EXPECT_DOUBLE_EQ(view[i].time, static_cast<double>(i)) << "record " << i;
    EXPECT_EQ(view[i].vm, static_cast<int64_t>(i));
  }
  size_t seen = 0;
  for (const TraceEventRecord& e : view) {
    EXPECT_DOUBLE_EQ(e.time, static_cast<double>(seen));
    ++seen;
  }
  EXPECT_EQ(seen, count);
}

TEST(EventTraceTest, ClearRecyclesChunksWithoutLosingNewRecords) {
  EventTrace trace;
  for (int round = 0; round < 5; ++round) {
    for (size_t i = 0; i < TraceEventView::kChunkRecords + 3; ++i) {
      trace.RecordAt(1.0, TraceEventKind::kPlacement, CascadeLayer::kNone, 1, 2,
                     ResourceVector::Zero(), ResourceVector::Zero(), round);
    }
    EXPECT_EQ(trace.size(), TraceEventView::kChunkRecords + 3);
    EXPECT_EQ(trace.events()[0].outcome, round);
    trace.Clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_TRUE(trace.events().empty());
  }
}

TEST(EventTraceTest, RestoreEventsRoundTripsAcrossChunkBoundary) {
  EventTrace trace;
  std::vector<TraceEventRecord> records;
  for (size_t i = 0; i < TraceEventView::kChunkRecords + 9; ++i) {
    TraceEventRecord r;
    r.time = static_cast<double>(i) * 0.5;
    r.kind = TraceEventKind::kReinflation;
    r.vm = static_cast<int64_t>(i);
    records.push_back(r);
  }
  trace.RecordAt(99.0, TraceEventKind::kDeflation, CascadeLayer::kNone, 7, 8,
                 ResourceVector::Zero(), ResourceVector::Zero(), 0);
  trace.RestoreEvents(records);
  ASSERT_EQ(trace.size(), records.size());  // pre-restore records discarded
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace.events()[i].time, records[i].time);
    EXPECT_EQ(trace.events()[i].vm, records[i].vm);
  }
}

TEST(TelemetryContextTest, ClockScopeBindsAndClears) {
  TelemetryContext telemetry;
  EXPECT_DOUBLE_EQ(telemetry.Now(), 0.0);
  {
    double now = 5.0;
    TelemetryClockScope scope(&telemetry, [&now] { return now; });
    EXPECT_DOUBLE_EQ(telemetry.Now(), 5.0);
    now = 6.0;
    EXPECT_DOUBLE_EQ(telemetry.Now(), 6.0);
  }
  // Out of scope: the clock must be unbound (the lambda above is dead).
  EXPECT_DOUBLE_EQ(telemetry.Now(), 0.0);
  // A null context is fine -- producers and scopes are nullable everywhere.
  TelemetryClockScope null_scope(nullptr, [] { return 1.0; });
}

}  // namespace
}  // namespace defl
