// Property suite for the interactive-serving scenario (DESIGN.md §16): SLO
// runs must be bitwise-identical at every thread count and across mid-run
// snapshot/restore; the SLO-aware controller must not serve the tail worse
// than the uniform baseline it replaces; and the `slo` what-if override must
// be deterministic, including when it enables interactive serving on a
// snapshot that ran without it.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_sim.h"
#include "src/cluster/sim_session.h"
#include "src/service/whatif.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

// The golden `interactive` scenario at property-test scale: diurnal arrivals
// with a tight SLO and a hot request rate, so violations and controller
// interventions both occur inside the 3-hour horizon.
ClusterSimConfig InteractiveConfig(bool slo_aware) {
  ClusterSimConfig config;
  config.num_servers = 30;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.seed = 42;
  config.trace.duration_s = 3.0 * 3600.0;
  config.trace.max_lifetime_s = 2.0 * 3600.0;
  config.trace.low_priority_fraction = 0.6;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  config.reinflate_period_s = 600.0;
  config.arrivals.enabled = true;
  config.arrivals.diurnal_amplitude = 0.6;
  config.arrivals.diurnal_period_s = 2.0 * 3600.0;
  config.arrivals.seed = 17;
  config.interactive.enabled = true;
  config.interactive.fraction = 0.45;
  config.interactive.slo_p99_ms = 60.0;
  config.interactive.slo_aware = slo_aware;
  config.interactive.control_period_s = 300.0;
  config.interactive.rate_rps_per_cpu = 120.0;
  config.interactive.rate_period_s = 2.0 * 3600.0;
  return config;
}

std::string Dump(TelemetryContext& telemetry) {
  std::ostringstream out;
  telemetry.metrics().DumpJson(out);
  out << "\n";
  telemetry.trace().DumpJsonl(out);
  return out.str();
}

std::string RunToBytes(ClusterSimConfig config, int threads) {
  config.cluster.threads = threads;
  TelemetryContext telemetry;
  telemetry.trace().set_enabled(true);
  config.telemetry = &telemetry;
  RunClusterSim(config);
  return Dump(telemetry);
}

TEST(SloDeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  const std::string base = RunToBytes(InteractiveConfig(true), 1);
  ASSERT_FALSE(base.empty());
  for (const int threads : {2, 7}) {
    EXPECT_EQ(base, RunToBytes(InteractiveConfig(true), threads))
        << "SLO run differs at --threads " << threads;
  }
}

TEST(SloDeterminismTest, SurvivesMidRunSnapshotRestore) {
  const std::string uninterrupted = RunToBytes(InteractiveConfig(true), 1);
  ClusterSimConfig config = InteractiveConfig(true);
  config.cluster.threads = 2;
  std::string bytes;
  {
    TelemetryContext telemetry;
    telemetry.trace().set_enabled(true);
    config.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(config);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(config.trace.duration_s / 2.0);
    bytes = session.value().SnapshotBytes();
  }
  TelemetryContext resumed;
  SimSession::RestoreOptions options;
  options.telemetry = &resumed;
  options.threads = 7;
  Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
  ASSERT_TRUE(restored.ok()) << restored.error();
  const ClusterSimResult result = restored.value().Finish();
  EXPECT_EQ(uninterrupted, Dump(resumed));
  EXPECT_GT(result.interactive_vms, 0);
}

TEST(SloDeterminismTest, SloAwareControllerBeatsUniformBaseline) {
  const ClusterSimResult slo = RunClusterSim(InteractiveConfig(true));
  const ClusterSimResult uniform = RunClusterSim(InteractiveConfig(false));

  // Same trace, same tagging: the policy changes behavior, not population.
  EXPECT_GT(slo.interactive_vms, 0);
  EXPECT_EQ(slo.interactive_vms, uniform.interactive_vms);

  for (const ClusterSimResult* r : {&slo, &uniform}) {
    EXPECT_GE(r->slo_violation_rate, 0.0);
    EXPECT_LE(r->slo_violation_rate, 1.0);
    EXPECT_GE(r->slo_peak_p99_ms, r->slo_mean_p99_ms);
  }
  // The scenario is hot enough that the baseline actually violates, and the
  // controller actually intervenes -- otherwise this test proves nothing.
  EXPECT_GT(uniform.slo_violation_rate, 0.0);
  EXPECT_GT(slo.slo_reinflate_ops, 0);
  EXPECT_GT(slo.slo_victim_deflations, 0);
  EXPECT_EQ(uniform.slo_reinflate_ops, 0);
  EXPECT_EQ(uniform.slo_victim_deflations, 0);
  // The point of the controller: relieve tail-latency pressure on web VMs.
  EXPECT_LE(slo.slo_violation_rate, uniform.slo_violation_rate);
}

// Snapshot a NON-interactive run at its halfway point, then finish it twice
// under an slo override that enables interactive serving. The two finishes
// must agree byte-for-byte (the override is part of the deterministic
// restore, not a side channel), and the override must actually take effect.
TEST(SloDeterminismTest, OverrideEnableOnPlainSnapshotIsDeterministic) {
  ClusterSimConfig config = InteractiveConfig(true);
  config.interactive = InteractiveSloConfig{};  // plain: no interactive mix
  std::string bytes;
  {
    TelemetryContext telemetry;
    telemetry.trace().set_enabled(true);
    config.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(config);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(config.trace.duration_s / 2.0);
    bytes = session.value().SnapshotBytes();
  }

  const auto finish_with_override = [&bytes](double fraction) {
    TelemetryContext telemetry;
    telemetry.trace().set_enabled(true);
    SimSession::RestoreOptions options;
    options.telemetry = &telemetry;
    options.threads = 1;
    options.slo.active = true;
    options.slo.slo_p99_ms = 60.0;
    options.slo.fraction = fraction;
    options.slo.policy = 1;
    options.slo.control_period_s = 300.0;
    Result<SimSession> restored = SimSession::RestoreBytes(bytes, options);
    EXPECT_TRUE(restored.ok()) << restored.error();
    ClusterSimResult result;
    std::string out;
    if (restored.ok()) {
      result = restored.value().Finish();
      out = Dump(telemetry);
    }
    return std::make_pair(result, out);
  };

  const auto [first, first_bytes] = finish_with_override(0.45);
  const auto [second, second_bytes] = finish_with_override(0.45);
  EXPECT_EQ(first_bytes, second_bytes);
  EXPECT_GT(first.interactive_vms, 0);
  EXPECT_EQ(first.interactive_vms, second.interactive_vms);

  // A different mix fraction re-tags the generated trace: more interactive
  // VMs at a higher fraction, fewer at zero.
  const auto [heavy, heavy_bytes] = finish_with_override(0.9);
  EXPECT_GT(heavy.interactive_vms, first.interactive_vms);
  const auto [none, none_bytes] = finish_with_override(0.0);
  EXPECT_EQ(none.interactive_vms, 0);
}

TEST(SloDeterminismTest, SloQueryAnswersIdenticalAcrossWorkers) {
  ClusterSimConfig config = InteractiveConfig(true);
  std::string bytes;
  {
    TelemetryContext telemetry;
    config.telemetry = &telemetry;
    Result<SimSession> session = SimSession::Open(config);
    ASSERT_TRUE(session.ok()) << session.error();
    session.value().StepUntil(config.trace.duration_s / 2.0);
    bytes = session.value().SnapshotBytes();
  }
  Result<WhatIfService> service = WhatIfService::Load(std::move(bytes));
  ASSERT_TRUE(service.ok()) << service.error();

  std::vector<WhatIfQuery> queries;
  for (const char* line :
       {"slo hours=1", "slo p99=40 policy=uniform hours=1",
        "slo p99=40 policy=slo hours=1", "slo fraction=0.8 hours=1"}) {
    Result<WhatIfQuery> query = ParseQuery(line);
    ASSERT_TRUE(query.ok()) << line << ": " << query.error();
    queries.push_back(query.value());
  }
  const std::string serial = service.value().AnswerBatch(queries, 1);
  EXPECT_EQ(serial, service.value().AnswerBatch(queries, 4));
  EXPECT_EQ(serial, service.value().AnswerBatch(queries, 13));
  // Every answer surfaced a violation-rate field, none errored.
  EXPECT_EQ(serial.find("\"error\""), std::string::npos) << serial;
  size_t seen = 0;
  for (size_t pos = serial.find("\"violation_rate\""); pos != std::string::npos;
       pos = serial.find("\"violation_rate\"", pos + 1)) {
    ++seen;
  }
  EXPECT_EQ(seen, queries.size());
}

}  // namespace
}  // namespace defl
