# Empty dependencies file for resource_vector_test.
# This may be replaced when dependencies are built.
