# Empty dependencies file for ext_pricing_economics.
# This may be replaced when dependencies are built.
