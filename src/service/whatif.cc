#include "src/service/whatif.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/sim/snapshot_io.h"
#include "src/telemetry/json_util.h"

namespace defl {

namespace {

// What-if VMs live far above any trace-assigned id (traces number VMs
// 0..n-1), so a probe launch can never collide with a snapshotted VM in the
// manager's VmId index.
constexpr VmId kWhatIfVmIdBase = 1'000'000'000'000LL;

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

VmSpec WhatIfSpec(const WhatIfQuery& query) {
  VmSpec spec;
  spec.name = "whatif";
  spec.size = query.shape;
  spec.priority = query.priority;
  // min_size stays zero: low-priority probes are fully deflatable, matching
  // the transient VMs the paper's placement policies are tuned for.
  return spec;
}

struct DeflationStats {
  double p99 = 0.0;
  double mean = 0.0;
  int64_t low_vms = 0;
};

// Per-low-priority-VM CPU deflation (1 - effective/nominal), folded in
// canonical (server, hosting) order, then sorted -- a fully deterministic
// distribution for any thread count (the child runs inline anyway).
DeflationStats CollectDeflation(ClusterManager& manager) {
  std::vector<ClusterManager::ServerUsageSample> samples;
  manager.CollectUsageSamples(&samples);
  std::vector<double> deflation;
  double sum = 0.0;
  for (const ClusterManager::ServerUsageSample& sample : samples) {
    for (const ClusterManager::ServerUsageSample::VmUsage& vm : sample.vms) {
      if (!vm.low_priority || vm.nominal_cpu <= 0.0) {
        continue;
      }
      const double d = 1.0 - vm.effective_cpu / vm.nominal_cpu;
      deflation.push_back(d);
      sum += d;
    }
  }
  DeflationStats stats;
  stats.low_vms = static_cast<int64_t>(deflation.size());
  if (deflation.empty()) {
    return stats;
  }
  std::sort(deflation.begin(), deflation.end());
  size_t idx = (deflation.size() * 99) / 100;
  if (idx >= deflation.size()) {
    idx = deflation.size() - 1;
  }
  stats.p99 = deflation[idx];
  stats.mean = sum / static_cast<double>(deflation.size());
  return stats;
}

}  // namespace

Result<WhatIfService> WhatIfService::Load(std::string blob) {
  std::shared_ptr<const std::string> shared =
      std::make_shared<const std::string>(std::move(blob));
  WhatIfService service(shared);
  service.blob_fnv_ = SnapshotFnv1a64(shared->data(), shared->size());
  TelemetryContext probe;
  Result<SimSession> check = service.RestoreChild(&probe);
  if (!check.ok()) {
    return Error{"snapshot blob rejected: " + check.error()};
  }
  service.base_now_s_ = check.value().now();
  service.base_duration_s_ = check.value().duration_s();
  return service;
}

Result<SimSession> WhatIfService::RestoreChild(
    TelemetryContext* telemetry, int placement,
    const SimSession::RestoreOptions::SloOverride* slo) const {
  SimSession::RestoreOptions options;
  options.telemetry = telemetry;
  options.threads = 1;
  options.placement = placement;
  if (slo != nullptr) {
    options.slo = *slo;
  }
  return SimSession::RestoreView(std::string_view(*blob_), options);
}

Result<std::string> WhatIfService::Answer(const WhatIfQuery& query) const {
  TelemetryContext telemetry;
  SimSession::RestoreOptions::SloOverride slo;
  if (query.kind == QueryKind::kSlo) {
    slo.active = true;
    slo.slo_p99_ms = query.slo_p99_ms;
    slo.fraction = query.mix_fraction;
    slo.policy = query.slo_policy;
    slo.control_period_s = query.slo_period_s;
  }
  Result<SimSession> restored =
      RestoreChild(&telemetry, /*placement=*/-1, slo.active ? &slo : nullptr);
  if (!restored.ok()) {
    return Error{"what-if restore failed: " + restored.error()};
  }
  SimSession& session = restored.value();
  ClusterManager& manager = session.manager();
  const ClusterCounters before = manager.counters();
  // kSlo reports metric deltas over its run; the child's registry arrives
  // pre-loaded with the snapshot's history, so capture the baselines now.
  int64_t slo_checks0 = 0, slo_violations0 = 0, slo_reinflate0 = 0,
          slo_victims0 = 0;
  if (query.kind == QueryKind::kSlo) {
    const MetricsRegistry& metrics = telemetry.metrics();
    slo_checks0 = metrics.CounterValue("slo/checks");
    slo_violations0 = metrics.CounterValue("slo/violations");
    slo_reinflate0 = metrics.CounterValue("slo/reinflate_ops");
    slo_victims0 = metrics.CounterValue("slo/victim_deflations");
  }

  std::string out = "{\"kind\":" + JsonString(QueryKindName(query.kind));
  switch (query.kind) {
    case QueryKind::kPlace: {
      int64_t placed = 0;
      const VmSpec spec = WhatIfSpec(query);
      for (int64_t i = 0; i < query.count; ++i) {
        if (manager.LaunchVm(std::make_unique<Vm>(kWhatIfVmIdBase + i, spec))
                .ok()) {
          ++placed;
        }
      }
      const ClusterCounters after = manager.counters();
      out += ",\"count\":" + std::to_string(query.count);
      out += ",\"placed\":" + std::to_string(placed);
      out += ",\"rejected\":" + std::to_string(query.count - placed);
      out += ",\"deflation_ops\":" +
             std::to_string(after.deflation_ops - before.deflation_ops);
      out += ",\"preempted\":" +
             std::to_string(after.preempted - before.preempted);
      break;
    }
    case QueryKind::kFail: {
      // Victim draw: a private Rng seeded from the query (not the session's
      // snapshotted stream), so the same query always crashes the same
      // servers. Partial Fisher-Yates over the ascending healthy ids, then
      // the chosen k are crashed in ascending id order -- one canonical
      // crash sequence per (blob, query).
      std::vector<ServerId> healthy;
      const std::vector<ServerHealth>& states = manager.health_states();
      std::vector<Server*> servers = manager.servers();
      for (size_t i = 0; i < states.size(); ++i) {
        if (states[i] == ServerHealth::kHealthy) {
          healthy.push_back(servers[i]->id());
        }
      }
      const int64_t n = static_cast<int64_t>(healthy.size());
      int64_t k = static_cast<int64_t>(
          std::floor(query.fraction * static_cast<double>(n) + 0.5));
      if (k > n) {
        k = n;
      }
      Rng rng(query.seed);
      for (int64_t i = 0; i < k; ++i) {
        const int64_t j = rng.UniformInt(i, n - 1);
        std::swap(healthy[static_cast<size_t>(i)], healthy[static_cast<size_t>(j)]);
      }
      std::vector<ServerId> victims(healthy.begin(), healthy.begin() + k);
      std::sort(victims.begin(), victims.end());
      for (ServerId id : victims) {
        manager.CrashServer(id);
      }
      const ClusterCounters after = manager.counters();
      out += ",\"fraction\":" + JsonNumber(query.fraction);
      out += ",\"healthy\":" + std::to_string(n);
      out += ",\"failed\":" + std::to_string(k);
      out += ",\"crash_replaced\":" +
             std::to_string(after.crash_replaced - before.crash_replaced);
      out += ",\"crash_preempted\":" +
             std::to_string(after.crash_preempted - before.crash_preempted);
      out += ",\"crash_lost\":" +
             std::to_string(after.crash_lost - before.crash_lost);
      break;
    }
    case QueryKind::kOvercommit: {
      const VmSpec spec = WhatIfSpec(query);
      int64_t admitted = 0;
      int64_t attempts = 0;
      bool rejected = false;
      while (attempts < query.limit && manager.Overcommitment() < query.target) {
        std::unique_ptr<Vm> vm =
            std::make_unique<Vm>(kWhatIfVmIdBase + attempts, spec);
        ++attempts;
        if (manager.LaunchVm(std::move(vm)).ok()) {
          ++admitted;
        } else {
          rejected = true;
          break;
        }
      }
      const ClusterCounters after = manager.counters();
      out += ",\"target\":" + JsonNumber(query.target);
      out += ",\"admitted\":" + std::to_string(admitted);
      out += std::string(",\"reached\":") +
             (manager.Overcommitment() >= query.target ? "true" : "false");
      out += std::string(",\"rejected\":") + (rejected ? "true" : "false");
      out += ",\"deflation_ops\":" +
             std::to_string(after.deflation_ops - before.deflation_ops);
      out += ",\"preempted\":" +
             std::to_string(after.preempted - before.preempted);
      break;
    }
    case QueryKind::kRun:
      // All reporting happens in the shared hours block below.
      break;
    case QueryKind::kSlo: {
      // Echo the effective interactive config (post-override) and the
      // interactive population currently placed, in canonical server order.
      const InteractiveSloConfig& mix = session.config().interactive;
      int64_t placed = 0;
      for (Server* server : manager.servers()) {
        for (const std::unique_ptr<Vm>& vm : server->vms()) {
          if (vm->spec().name.rfind("web", 0) == 0) {
            ++placed;
          }
        }
      }
      out += ",\"p99_target_ms\":" + JsonNumber(mix.slo_p99_ms);
      out += ",\"policy\":" + JsonString(mix.slo_aware ? "slo" : "uniform");
      out += ",\"mix_fraction\":" + JsonNumber(mix.fraction);
      out += ",\"interactive_placed\":" + std::to_string(placed);
      break;
    }
  }

  if (query.hours > 0.0) {
    const ClusterCounters mid = manager.counters();
    const int64_t events_mid = session.events_executed();
    session.StepUntil(session.now() + query.hours * 3600.0);
    const ClusterCounters end = manager.counters();
    const DeflationStats deflation = CollectDeflation(manager);
    out += ",\"hours\":" + JsonNumber(query.hours);
    out += ",\"events\":" +
           std::to_string(session.events_executed() - events_mid);
    out += ",\"sim_preempted\":" + std::to_string(end.preempted - mid.preempted);
    out += ",\"sim_crash_preempted\":" +
           std::to_string(end.crash_preempted - mid.crash_preempted);
    out += ",\"low_vms\":" + std::to_string(deflation.low_vms);
    out += ",\"p99_deflation\":" + JsonNumber(deflation.p99);
    out += ",\"mean_deflation\":" + JsonNumber(deflation.mean);
  }
  if (query.kind == QueryKind::kSlo) {
    const MetricsRegistry& metrics = telemetry.metrics();
    const int64_t checks = metrics.CounterValue("slo/checks") - slo_checks0;
    const int64_t violations =
        metrics.CounterValue("slo/violations") - slo_violations0;
    out += ",\"slo_checks\":" + std::to_string(checks);
    out += ",\"slo_violations\":" + std::to_string(violations);
    out += ",\"violation_rate\":" +
           JsonNumber(checks > 0
                          ? static_cast<double>(violations) /
                                static_cast<double>(checks)
                          : 0.0);
    // Distribution stats are cumulative over the whole simulated history
    // (snapshot included): RunningStats fold, they don't subtract.
    const RunningStats& p99 =
        metrics.distribution(metrics.FindDistribution("slo/p99_ms"));
    out += ",\"p99_mean_ms\":" + JsonNumber(p99.count() > 0 ? p99.mean() : 0.0);
    out += ",\"p99_peak_ms\":" + JsonNumber(p99.count() > 0 ? p99.max() : 0.0);
    out += ",\"reinflate_ops\":" +
           std::to_string(metrics.CounterValue("slo/reinflate_ops") -
                          slo_reinflate0);
    out += ",\"victim_deflations\":" +
           std::to_string(metrics.CounterValue("slo/victim_deflations") -
                          slo_victims0);
  }
  out += ",\"utilization\":" + JsonNumber(manager.Utilization());
  out += ",\"overcommitment\":" + JsonNumber(manager.Overcommitment());
  out += ",\"now_h\":" + JsonNumber(session.now() / 3600.0);
  out += "}";
  return out;
}

std::string WhatIfService::AnswerBatch(const std::vector<WhatIfQuery>& queries,
                                       int workers) const {
  std::vector<std::string> lines(queries.size());
  const auto answer_one = [this, &queries, &lines](int64_t i) {
    Result<std::string> answer = Answer(queries[static_cast<size_t>(i)]);
    lines[static_cast<size_t>(i)] =
        answer.ok() ? answer.value()
                    : "{\"error\":" + JsonString(answer.error()) + "}";
  };
  const int64_t n = static_cast<int64_t>(queries.size());
  if (workers <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      answer_one(i);
    }
  } else {
    ThreadPool pool(workers);
    pool.ParallelFor(n, answer_one);
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  out += "# batch queries=" + std::to_string(queries.size()) + " fnv1a64=" +
         Hex16(SnapshotFnv1a64(out.data(), out.size())) + "\n";
  return out;
}

}  // namespace defl
