#include "src/hypervisor/overcommit.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

TEST(MultiplexedCpuFactorTest, NoMultiplexingIsFree) {
  EXPECT_DOUBLE_EQ(MultiplexedCpuFactor(4.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(MultiplexedCpuFactor(4.0, 8.0), 1.0);
}

TEST(MultiplexedCpuFactorTest, WorseThanProportionalUnderMultiplexing) {
  // 4 vCPUs on 2 cores: raw share is 0.5; LHP makes it strictly worse.
  const double f = MultiplexedCpuFactor(4.0, 2.0);
  EXPECT_LT(f, 0.5);
  EXPECT_GT(f, 0.0);
}

TEST(MultiplexedCpuFactorTest, MonotonicInCapacity) {
  double prev = 0.0;
  for (double cap = 0.5; cap <= 4.0; cap += 0.5) {
    const double f = MultiplexedCpuFactor(4.0, cap);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(MultiplexedCpuFactorTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(MultiplexedCpuFactor(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(MultiplexedCpuFactor(4.0, 0.0), 0.0);
}

TEST(MultiplexedCpuFactorTest, PenaltyGrowsWithRatio) {
  // Efficiency loss vs. the raw share grows as multiplexing deepens.
  const double loss_2x = 1.0 - MultiplexedCpuFactor(4.0, 2.0) / 0.5;
  const double loss_4x = 1.0 - MultiplexedCpuFactor(4.0, 1.0) / 0.25;
  EXPECT_GT(loss_4x, loss_2x);
}

TEST(CappedParallelRateTest, FullyBackedRunsAtThreadCount) {
  EXPECT_DOUBLE_EQ(CappedParallelRate(4.0, 4.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(CappedParallelRate(2.0, 4.0, 4.0), 2.0);
}

TEST(CappedParallelRateTest, SerialSectionImmuneWhileCapacityAtLeastOne) {
  // A single runnable thread keeps full speed under CPU throttling as long
  // as at least one core of capacity remains (work-conserving shares).
  EXPECT_DOUBLE_EQ(CappedParallelRate(1.0, 4.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(CappedParallelRate(1.0, 4.0, 2.5), 1.0);
}

TEST(CappedParallelRateTest, LhpPenaltyWhenOversubscribed) {
  // 4 runnable threads on 2 cores: capacity 2 minus LHP penalty.
  const double rate = CappedParallelRate(4.0, 4.0, 2.0);
  EXPECT_LT(rate, 2.0);
  EXPECT_GT(rate, 1.5);
}

TEST(CappedParallelRateTest, ThreadsBeyondVisibleCpusDontHelp) {
  EXPECT_DOUBLE_EQ(CappedParallelRate(16.0, 4.0, 4.0), 4.0);
}

TEST(CappedParallelRateTest, ZeroCapacityStalls) {
  EXPECT_DOUBLE_EQ(CappedParallelRate(4.0, 4.0, 0.0), 0.0);
}

TEST(AmdahlSlowdownTest, NoDeflationNoSlowdown) {
  EXPECT_NEAR(AmdahlSlowdown(0.5, 4.0, 4.0, 4.0), 1.0, 1e-12);
}

TEST(AmdahlSlowdownTest, UnplugMatchesClassicAmdahl) {
  // 4 -> 2 fully-backed CPUs with p = 0.5: time goes 0.625 -> 0.75.
  EXPECT_NEAR(AmdahlSlowdown(0.5, 2.0, 2.0, 4.0), 0.75 / 0.625, 1e-12);
}

TEST(AmdahlSlowdownTest, ThrottlingBeatsNaiveProportionalSlowdown) {
  // 4 vCPUs throttled to 1 core: the serial half still runs at full speed,
  // so the slowdown is far below the naive 4x.
  const double s = AmdahlSlowdown(0.5, 4.0, 1.0, 4.0);
  EXPECT_LT(s, 3.0);
  EXPECT_GT(s, 1.5);
}

TEST(AmdahlSlowdownTest, ThrottlingSlowerThanEquivalentUnplug) {
  // Same capacity, but multiplexing incurs LHP: hv-only trails hot-unplug
  // (the Figure 5b gap).
  const double throttled = AmdahlSlowdown(0.5, 4.0, 2.0, 4.0);
  const double unplugged = AmdahlSlowdown(0.5, 2.0, 2.0, 4.0);
  EXPECT_GT(throttled, unplugged);
  // ...but by a modest factor (~20%), not a cliff.
  EXPECT_LT(throttled, unplugged * 1.5);
}

TEST(AmdahlSlowdownTest, ZeroCapacityEffectivelyStalls) {
  EXPECT_GT(AmdahlSlowdown(0.5, 4.0, 0.0, 4.0), 1e6);
}

TEST(SwapSlowdownTest, NoSwapNoSlowdown) {
  EXPECT_DOUBLE_EQ(SwapSlowdown(0.0, 0.5), 1.0);
}

TEST(SwapSlowdownTest, ScalesWithIntensity) {
  const double light = SwapSlowdown(0.01, 0.1);
  const double heavy = SwapSlowdown(0.01, 0.9);
  EXPECT_GT(heavy, light);
  EXPECT_GT(light, 1.0);
}

TEST(SwapSlowdownTest, ZeroIntensityImmune) {
  EXPECT_DOUBLE_EQ(SwapSlowdown(1.0, 0.0), 1.0);
}

TEST(AverageAccessCostTest, InterpolatesBetweenMemAndSwap) {
  OvercommitCosts costs;
  EXPECT_DOUBLE_EQ(AverageAccessCostUs(0.0, costs), costs.mem_access_us);
  EXPECT_DOUBLE_EQ(AverageAccessCostUs(1.0, costs), costs.swap_access_us);
  const double mid = AverageAccessCostUs(0.5, costs);
  EXPECT_GT(mid, costs.mem_access_us);
  EXPECT_LT(mid, costs.swap_access_us);
}

TEST(LruSwapHitFractionTest, FitsEntirelyNoSwap) {
  EXPECT_DOUBLE_EQ(LruSwapHitFraction(1000.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(LruSwapHitFraction(1000.0, 2000.0), 0.0);
  EXPECT_DOUBLE_EQ(LruSwapHitFraction(0.0, 0.0), 0.0);
}

TEST(LruSwapHitFractionTest, NothingResidentAllSwap) {
  EXPECT_DOUBLE_EQ(LruSwapHitFraction(1000.0, 0.0), 1.0);
}

TEST(LruSwapHitFractionTest, LocalityMakesSwapSublinear) {
  // With half the footprint resident, much less than half the accesses
  // should hit swap (hot pages stay resident).
  const double f = LruSwapHitFraction(8000.0, 4000.0);
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 0.35);
}

TEST(LruSwapHitFractionTest, MonotonicInResidentSize) {
  double prev = 1.1;
  for (double resident = 0.0; resident <= 8000.0; resident += 1000.0) {
    const double f = LruSwapHitFraction(8000.0, resident);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace defl
