#include "src/sim/wal_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/atomic_file.h"
#include "src/common/crash_point.h"
#include "src/sim/snapshot_io.h"

namespace defl {
namespace {

void AppendU32Le(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64Le(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendF64Le(std::string& out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64Le(out, bits);
}

uint32_t LoadU32Le(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double LoadF64Le(const char* p) {
  const uint64_t bits = LoadU64Le(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

constexpr size_t kHeaderBytes = sizeof(kWalMagic) + 4;
constexpr size_t kFrameOverhead = 4 + 1 + 8;  // length + kind + checksum

// Payload sizes are fixed per kind; a framed record whose length disagrees
// is malformed even if its checksum passes (a lying length field cannot
// smuggle a short payload through).
size_t PayloadBytesFor(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kStepUntil:
      return 8;
    case WalRecordKind::kStepEventsTo:
      return 8;
    case WalRecordKind::kCheckpoint:
      return 8 * 5;
  }
  return 0;
}

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  switch (record.kind) {
    case WalRecordKind::kStepUntil:
      AppendF64Le(payload, record.t_s);
      break;
    case WalRecordKind::kStepEventsTo:
      AppendU64Le(payload, static_cast<uint64_t>(record.target_events));
      break;
    case WalRecordKind::kCheckpoint:
      AppendU64Le(payload, record.checkpoint_id);
      AppendF64Le(payload, record.sim_time_s);
      AppendU64Le(payload, static_cast<uint64_t>(record.events_executed));
      AppendU64Le(payload, record.snapshot_fnv);
      AppendU64Le(payload, record.snapshot_size);
      break;
  }
  return payload;
}

std::string ErrnoText() { return std::strerror(errno); }

Result<bool> WriteAllFsync(int fd, const char* data, size_t size,
                           const std::string& what) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Error{"short write to " + what + ": " + ErrnoText()};
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    return Error{"fsync failed on " + what + ": " + ErrnoText()};
  }
  return true;
}

}  // namespace

WalRecord WalRecord::StepUntil(double t_s) {
  WalRecord r;
  r.kind = WalRecordKind::kStepUntil;
  r.t_s = t_s;
  return r;
}

WalRecord WalRecord::StepEventsTo(int64_t target_events) {
  WalRecord r;
  r.kind = WalRecordKind::kStepEventsTo;
  r.target_events = target_events;
  return r;
}

WalRecord WalRecord::Checkpoint(uint64_t id, double sim_time_s,
                                int64_t events_executed, uint64_t snapshot_fnv,
                                uint64_t snapshot_size) {
  WalRecord r;
  r.kind = WalRecordKind::kCheckpoint;
  r.checkpoint_id = id;
  r.sim_time_s = sim_time_s;
  r.events_executed = events_executed;
  r.snapshot_fnv = snapshot_fnv;
  r.snapshot_size = snapshot_size;
  return r;
}

std::string EncodeWalRecord(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  std::string bytes;
  bytes.reserve(kFrameOverhead + payload.size());
  AppendU32Le(bytes, static_cast<uint32_t>(payload.size()));
  bytes.push_back(static_cast<char>(record.kind));
  bytes.append(payload);
  AppendU64Le(bytes, SnapshotFnv1a64(bytes.data(), bytes.size()));
  return bytes;
}

std::string EncodeWalHeader() {
  std::string bytes(kWalMagic, sizeof(kWalMagic));
  AppendU32Le(bytes, kWalFormatVersion);
  return bytes;
}

Result<WalReadResult> DecodeWal(const std::string& bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Error{"WAL truncated: " + std::to_string(bytes.size()) +
                 " bytes is smaller than the fixed header"};
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Error{"not a deflation WAL (bad magic)"};
  }
  const uint32_t version = LoadU32Le(bytes.data() + sizeof(kWalMagic));
  if (version != kWalFormatVersion) {
    return Error{"unsupported WAL format version " + std::to_string(version) +
                 " (this build reads version " +
                 std::to_string(kWalFormatVersion) + ")"};
  }

  WalReadResult result;
  size_t pos = kHeaderBytes;
  const auto torn = [&](const std::string& reason) {
    result.torn = true;
    result.torn_reason = reason + " at offset " + std::to_string(pos);
    result.valid_bytes = pos;
    return result;
  };
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameOverhead) {
      return torn("short record frame");
    }
    const uint32_t payload_len = LoadU32Le(bytes.data() + pos);
    const uint8_t kind_byte = static_cast<uint8_t>(bytes[pos + 4]);
    if (bytes.size() - pos < kFrameOverhead + payload_len) {
      return torn("record frame runs past end of file");
    }
    const size_t body = 4 + 1 + payload_len;
    const uint64_t expected = LoadU64Le(bytes.data() + pos + body);
    const uint64_t actual = SnapshotFnv1a64(bytes.data() + pos, body);
    if (expected != actual) {
      return torn("record checksum mismatch");
    }
    if (kind_byte > kMaxWalRecordKind) {
      return torn("unknown record kind " + std::to_string(kind_byte));
    }
    const WalRecordKind kind = static_cast<WalRecordKind>(kind_byte);
    if (payload_len != PayloadBytesFor(kind)) {
      return torn("record payload length " + std::to_string(payload_len) +
                  " does not match its kind");
    }
    const char* p = bytes.data() + pos + 5;
    WalRecord record;
    record.kind = kind;
    switch (kind) {
      case WalRecordKind::kStepUntil:
        record.t_s = LoadF64Le(p);
        break;
      case WalRecordKind::kStepEventsTo:
        record.target_events = static_cast<int64_t>(LoadU64Le(p));
        break;
      case WalRecordKind::kCheckpoint:
        record.checkpoint_id = LoadU64Le(p);
        record.sim_time_s = LoadF64Le(p + 8);
        record.events_executed = static_cast<int64_t>(LoadU64Le(p + 16));
        record.snapshot_fnv = LoadU64Le(p + 24);
        record.snapshot_size = LoadU64Le(p + 32);
        break;
    }
    result.records.push_back(record);
    pos += body + 8;
  }
  result.valid_bytes = pos;
  return result;
}

Result<WalReadResult> ReadWalFile(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    return Error{bytes.error()};
  }
  Result<WalReadResult> decoded = DecodeWal(bytes.value());
  if (!decoded.ok()) {
    return Error{path + ": " + decoded.error()};
  }
  return decoded;
}

Result<WalWriter> WalWriter::Create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error{"cannot create WAL " + path + ": " + ErrnoText()};
  }
  const std::string header = EncodeWalHeader();
  const Result<bool> wrote = WriteAllFsync(fd, header.data(), header.size(), path);
  if (!wrote.ok()) {
    ::close(fd);
    return Error{wrote.error()};
  }
  SyncParentDir(path);
  return WalWriter(fd);
}

Result<WalWriter> WalWriter::OpenAt(const std::string& path,
                                    uint64_t valid_bytes) {
  if (valid_bytes < kHeaderBytes) {
    return Error{"WAL append position " + std::to_string(valid_bytes) +
                 " is inside the header"};
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Error{"cannot open WAL " + path + " for appending: " + ErrnoText()};
  }
  // Drop the torn tail so the next record lands directly after the last
  // valid one (the trace_io EOF posture: garbage after the valid prefix is
  // discarded, never reinterpreted).
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const std::string error = ErrnoText();
    ::close(fd);
    return Error{"cannot truncate WAL " + path + " torn tail: " + error};
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    const std::string error = ErrnoText();
    ::close(fd);
    return Error{"cannot seek WAL " + path + ": " + error};
  }
  if (::fsync(fd) != 0) {
    const std::string error = ErrnoText();
    ::close(fd);
    return Error{"fsync failed on " + path + ": " + error};
  }
  return WalWriter(fd);
}

WalWriter::WalWriter(WalWriter&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<bool> WalWriter::Append(const WalRecord& record) {
  if (fd_ < 0) {
    return Error{"WAL writer was moved from"};
  }
  const std::string bytes = EncodeWalRecord(record);
  // Chaos window: die after only half the record reaches the file -- the
  // manufactured torn tail the reader must truncate on recovery.
  if (CrashPointFires("wal-append-torn")) {
    const size_t half = bytes.size() / 2;
    (void)WriteAllFsync(fd_, bytes.data(), half, "WAL");
    CrashPointKill();
  }
  const Result<bool> wrote = WriteAllFsync(fd_, bytes.data(), bytes.size(), "WAL");
  if (!wrote.ok()) {
    return wrote;
  }
  // Chaos window: the record is durable but nothing that follows it is.
  CrashPoint("wal-append-synced");
  return true;
}

}  // namespace defl
