#include "src/spark/workload.h"

namespace defl {
namespace {

// Appends an RDD and returns its id.
RddId Add(SparkWorkload& wl, const std::string& name, RddId parent, bool wide,
          int partitions, double cost_s, double out_mb, bool cached = false,
          RddId parent2 = -1) {
  RddDef def;
  def.id = static_cast<RddId>(wl.rdds.size());
  def.name = name;
  def.parent = parent;
  def.parent2 = parent2;
  def.wide = wide;
  def.num_partitions = partitions;
  def.cost_per_partition_s = cost_s;
  def.output_mb_per_partition = out_mb;
  def.cached = cached;
  wl.rdds.push_back(def);
  return def.id;
}

}  // namespace

double SparkWorkload::TotalCost() const {
  double total = 0.0;
  for (const RddDef& rdd : rdds) {
    total += rdd.cost_per_partition_s * rdd.num_partitions;
  }
  return total;
}

SparkWorkload MakeAlsWorkload(double scale) {
  // mllib ALS on a 100 GB ratings dataset: load + cache the ratings, then
  // alternate user-factor / item-factor updates. Every update shuffles the
  // full factor matrices -- deep wide lineage, heavy recomputation when
  // shuffle outputs are lost (Section 6.2: "the RDD recomputation graph for
  // ALS is shuffle-heavy").
  SparkWorkload wl;
  wl.name = "als";
  wl.records_per_task = 500.0;
  wl.cpu_elastic_fraction = 0.9;
  wl.memory_demand_fraction = 0.55;
  const int p = 64;
  const RddId ratings =
      Add(wl, "ratings", -1, false, p, 3.0 * scale, 180.0, /*cached=*/true);
  // Initial factor matrix (cheap random init).
  RddId prev = Add(wl, "init-factors", -1, false, p, 0.2 * scale, 100.0);
  for (int i = 0; i < 10; ++i) {
    const std::string side = i % 2 == 0 ? "user" : "item";
    // Each half-iteration joins the previous factors with the cached
    // ratings -- a two-parent shuffle, mllib's actual structure.
    prev = Add(wl, side + "-factors-" + std::to_string(i / 2 + 1), prev,
               /*wide=*/true, p, 2.5 * scale, 120.0, /*cached=*/false,
               /*parent2=*/ratings);
  }
  return wl;
}

SparkWorkload MakeKmeansWorkload(double scale) {
  // mllib dense K-means on a 50 GB dataset: the points are cached once; each
  // iteration maps over the cached points (narrow) and aggregates tiny
  // per-partition sums (cheap shuffle). Lineage is shallow: everything hangs
  // off the cached input, so recomputation after task kills is cheap.
  SparkWorkload wl;
  wl.name = "kmeans";
  wl.records_per_task = 800.0;
  wl.cpu_elastic_fraction = 0.85;
  wl.memory_demand_fraction = 0.6;
  const int p = 64;
  const RddId points =
      Add(wl, "points", -1, false, p, 4.0 * scale, 150.0, /*cached=*/true);
  for (int i = 0; i < 10; ++i) {
    const RddId dist = Add(wl, "closest-" + std::to_string(i + 1), points,
                           /*wide=*/false, p, 2.0 * scale, 1.0);
    Add(wl, "centers-" + std::to_string(i + 1), dist, /*wide=*/true, 8,
        0.15 * scale, 0.5);
  }
  return wl;
}

namespace {

SparkWorkload MakeTrainingWorkload(const std::string& name, int iterations,
                                   double iter_task_cost_s, double records_per_task,
                                   double cpu_elastic_fraction, double scale,
                                   bool with_checkpointing) {
  // BigDL-style synchronous SGD: partitioned training data is cached; every
  // iteration computes gradients on all partitions and synchronously merges
  // model parameters (a barrier + shuffle). The job is inelastic: losing any
  // task invalidates the in-flight iteration and rolls back to the last
  // checkpoint (Section 4.1, Section 6.2).
  SparkWorkload wl;
  wl.name = name;
  wl.synchronous = true;
  wl.records_per_task = records_per_task;
  wl.cpu_elastic_fraction = cpu_elastic_fraction;
  wl.memory_demand_fraction = 0.3;  // small training sets (Cifar-10, text)
  const int p = 32;
  const RddId data =
      Add(wl, "train-data", -1, false, p, 2.0 * scale, 200.0, /*cached=*/true);
  RddId prev = data;
  for (int i = 0; i < iterations; ++i) {
    prev = Add(wl, "iter-" + std::to_string(i + 1), prev, /*wide=*/true, p,
               iter_task_cost_s * scale, 20.0);
  }
  if (with_checkpointing) {
    wl.checkpoint_every_stages = 2;
    // ~20% of the compute time between checkpoints: the ~20% steady-state
    // throughput cost of checkpointed training in Figure 7b.
    wl.checkpoint_cost_s = 0.2 * 2.0 * iter_task_cost_s * scale;
  }
  return wl;
}

}  // namespace

SparkWorkload MakeCnnWorkload(double scale, bool with_checkpointing, int iterations) {
  return MakeTrainingWorkload("cnn", iterations, 11.0, 720.0,
                              /*cpu_elastic_fraction=*/0.35, scale, with_checkpointing);
}

SparkWorkload MakeRnnWorkload(double scale, bool with_checkpointing, int iterations) {
  return MakeTrainingWorkload("rnn", iterations, 8.0, 400.0,
                              /*cpu_elastic_fraction=*/0.45, scale, with_checkpointing);
}

}  // namespace defl
