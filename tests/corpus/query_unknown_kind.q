# 'deflate' is not a query kind (place/fail/overcommit/run).
deflate fraction=0.5
