# Empty dependencies file for controller_properties_test.
# This may be replaced when dependencies are built.
