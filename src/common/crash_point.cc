#include "src/common/crash_point.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>

namespace defl {
namespace {

// One armed point per process is enough: a crash test dies at the first
// fatal hit, and the next generation re-arms after fork/exec.
struct Arming {
  std::string name;
  int64_t countdown = 0;  // fatal when it reaches 0 on a hit
  bool armed = false;
};

Arming& GetArming() {
  static Arming arming = [] {
    Arming a;
    const char* env = std::getenv("DEFL_CRASH_POINT");
    if (env != nullptr && *env != '\0') {
      const char* colon = std::strrchr(env, ':');
      if (colon != nullptr && colon != env) {
        a.name.assign(env, static_cast<size_t>(colon - env));
        a.countdown = std::strtoll(colon + 1, nullptr, 10);
        a.armed = a.countdown > 0;
      }
    }
    return a;
  }();
  return arming;
}

}  // namespace

bool CrashPointFires(const char* name) {
  Arming& arming = GetArming();
  if (!arming.armed || arming.name != name) {
    return false;
  }
  return --arming.countdown == 0;
}

void CrashPointKill() {
  // SIGKILL cannot be caught: no destructors, no buffered-stream flushes --
  // exactly what a reclaimed transient server or an OOM kill looks like.
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);  // unreachable; keeps [[noreturn]] honest if kill fails
}

void ArmCrashPointForTest(const char* name, int64_t countdown) {
  Arming& arming = GetArming();
  arming.name = name;
  arming.countdown = countdown;
  arming.armed = countdown > 0;
}

void DisarmCrashPointsForTest() { GetArming().armed = false; }

}  // namespace defl
