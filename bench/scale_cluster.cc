// Cluster-scale placement throughput: replays synthetic traces of growing
// size through the full cluster simulator and reports lifecycle events per
// second of wall time. This is the harness guarding the incremental
// accounting + VM-index work (DESIGN.md §9): before it, every placement
// rescanned all hosted VMs and every lookup scanned all servers, so
// events/sec collapsed quadratically with cluster size.
//
// Output: the usual bench table, then one `scale_cluster_json: {...}` footer
// line with the machine-readable points (CI diffs it against
// bench/scale_cluster_baseline.json and fails on >2x regression).
//
// A second mode sweeps the sharded-simulation thread count at a fixed
// cluster size and emits a `scale_threads_json: {...}` footer: the speedup
// of the parallel placement probes and per-server sweeps (DESIGN.md §10)
// relative to the checked-in single-thread baseline
// (bench/scale_threads_baseline.json). Event counts are identical at every
// thread count -- only wall time may differ.
//
// A third mode ("cloud") runs the hyperscale configuration: a fleet of small
// servers under the diurnal/bursty arrival generator, placed with 2-choices
// (the only policy whose per-placement probe cost is independent of fleet
// size), defaulting to 100k servers / 2M VM arrivals. It emits a
// `scale_cloud_json: {...}` footer; CI runs a reduced-event smoke point and
// checks the event counts against bench/scale_cloud_baseline.json exactly
// (the simulation is deterministic, so any drift is a behavior change).
//
// Usage: scale_cluster [servers target_vms]
//   no args  -> the default sweep (100/2k, 250/5k, 1000/20k)
//   two args -> a single point, for the CI regression check
//        scale_cluster threads [servers target_vms]
//   thread-count sweep (1/2/4/8) at 1000/20k by default
//        scale_cluster cloud [servers target_vms [threads]]
//   cloud-scale point (100000/2000000 by default)
#include <chrono>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/cluster/cluster_sim.h"

namespace defl {
namespace {

struct ScalePoint {
  int servers = 0;
  int target_vms = 0;
  int threads = 1;
  int64_t vms = 0;      // actual arrivals in the generated trace
  int64_t events = 0;   // launched + rejected + completed + preempted
  double wall_s = 0.0;
  double events_per_s = 0.0;
};

ScalePoint RunPoint(int servers, int target_vms, int threads = 1) {
  ScalePoint point;
  point.servers = servers;
  point.target_vms = target_vms;
  point.threads = threads;

  ClusterSimConfig config;
  config.num_servers = servers;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.seed = 1234;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  // Fix the offered load at the paper's 1.6x and stretch the horizon until
  // the expected arrival count hits the target, so every sweep point
  // stresses placement at the same per-server pressure.
  config.trace = WithTargetLoad(config.trace, 1.6, servers, config.server_capacity);
  config.trace.duration_s =
      static_cast<double>(target_vms) / config.trace.arrival_rate_per_s;
  config.cluster.threads = threads;
  config.explicit_trace = GenerateTrace(config.trace);
  point.vms = static_cast<int64_t>(config.explicit_trace.size());

  const auto start = std::chrono::steady_clock::now();
  const ClusterSimResult result = RunClusterSim(config);
  const auto end = std::chrono::steady_clock::now();

  point.wall_s = std::chrono::duration<double>(end - start).count();
  point.events = result.counters.launched + result.counters.rejected +
                 result.counters.completed + result.counters.preempted;
  point.events_per_s =
      point.wall_s > 0.0 ? static_cast<double>(point.events) / point.wall_s : 0.0;
  return point;
}

// Fixed arrival-shape knobs for the cloud point. The diurnal period is much
// shorter than a real day so the run covers full peak/trough cycles within
// its ~2-hour simulated horizon; bursts land on top of the sinusoid.
ArrivalGenConfig CloudArrivals() {
  ArrivalGenConfig arrivals;
  arrivals.enabled = true;
  arrivals.diurnal_amplitude = 0.6;
  arrivals.diurnal_period_s = 2.0 * 3600.0;
  arrivals.diurnal_phase_s = 0.0;
  arrivals.burst_rate_per_s = 2.0 / 3600.0;
  arrivals.burst_duration_s = 900.0;
  arrivals.burst_multiplier = 3.0;
  arrivals.seed = 17;
  return arrivals;
}

// One cloud-scale run: many small (8-core) servers so a 2M-VM trace exerts
// real placement pressure, 2-choices placement, hourly sampling (a 300 s
// sweep over 100k servers would dominate the wall time), diurnal arrivals.
ScalePoint RunCloudPoint(int servers, int target_vms, int threads) {
  ScalePoint point;
  point.servers = servers;
  point.target_vms = target_vms;
  point.threads = threads;

  ClusterSimConfig config;
  config.num_servers = servers;
  config.server_capacity = ResourceVector(8.0, 64.0 * 1024.0, 500.0, 5000.0);
  config.trace.seed = 1234;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  config.trace = WithTargetLoad(config.trace, 1.6, servers, config.server_capacity);
  config.trace.duration_s =
      static_cast<double>(target_vms) / config.trace.arrival_rate_per_s;
  config.arrivals = CloudArrivals();
  config.sample_period_s = 3600.0;
  config.cluster.placement = PlacementPolicy::kTwoChoices;
  config.cluster.threads = threads;
  config.explicit_trace = GenerateDiurnalTrace(config.trace, config.arrivals);
  point.vms = static_cast<int64_t>(config.explicit_trace.size());

  const auto start = std::chrono::steady_clock::now();
  const ClusterSimResult result = RunClusterSim(config);
  const auto end = std::chrono::steady_clock::now();

  point.wall_s = std::chrono::duration<double>(end - start).count();
  point.events = result.counters.launched + result.counters.rejected +
                 result.counters.completed + result.counters.preempted;
  point.events_per_s =
      point.wall_s > 0.0 ? static_cast<double>(point.events) / point.wall_s : 0.0;
  return point;
}

int RunCloudMode(int servers, int target_vms, int threads) {
  bench::PrintHeader("scale_cloud",
                     "cloud-scale fleet under diurnal/bursty arrivals");
  bench::PrintNote("8-core servers, 1.6x mean offered load, 2-choices placement,");
  bench::PrintNote("sinusoidal rate (0.6 amplitude, 2h period) + Poisson bursts.");
  bench::PrintColumns({"servers", "vms", "events", "threads", "wall-s", "events/s"});

  const ScalePoint point = RunCloudPoint(servers, target_vms, threads);
  bench::PrintCell(static_cast<double>(point.servers));
  bench::PrintCell(static_cast<double>(point.vms));
  bench::PrintCell(static_cast<double>(point.events));
  bench::PrintCell(static_cast<double>(point.threads));
  bench::PrintCell(point.wall_s);
  bench::PrintCell(point.events_per_s);
  bench::EndRow();

  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"scale_cloud\", \"points\": [{\"servers\": %d, "
                "\"target_vms\": %d, \"vms\": %lld, \"events\": %lld, "
                "\"threads\": %d, \"wall_s\": %.4f, \"events_per_s\": %.1f}]}",
                point.servers, point.target_vms,
                static_cast<long long>(point.vms),
                static_cast<long long>(point.events), point.threads,
                point.wall_s, point.events_per_s);
  std::printf("scale_cloud_json: %s\n", buf);
  return 0;
}

// Thread-count sweep at a fixed cluster size. Every point replays the same
// trace; the sharded sweeps guarantee identical event counts, so the only
// degree of freedom is wall time.
int RunThreadSweep(int servers, int target_vms) {
  bench::PrintHeader("scale_threads",
                     "sharded-simulation throughput vs thread count");
  bench::PrintNote("same trace at every point; event counts are identical by");
  bench::PrintNote("construction (DESIGN.md §10), only wall time varies.");
  bench::PrintColumns({"threads", "servers", "vms", "events", "wall-s", "events/s"});

  std::string json = "{\"bench\": \"scale_threads\", \"points\": [";
  bool first = true;
  int64_t base_events = -1;
  double base_events_per_s = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const ScalePoint point = RunPoint(servers, target_vms, threads);
    bench::PrintCell(static_cast<double>(point.threads));
    bench::PrintCell(static_cast<double>(point.servers));
    bench::PrintCell(static_cast<double>(point.vms));
    bench::PrintCell(static_cast<double>(point.events));
    bench::PrintCell(point.wall_s);
    bench::PrintCell(point.events_per_s);
    bench::EndRow();
    if (base_events < 0) {
      base_events = point.events;
      base_events_per_s = point.events_per_s;
    } else if (point.events != base_events) {
      std::printf("FAIL: event count changed with thread count (%lld vs %lld)\n",
                  static_cast<long long>(point.events),
                  static_cast<long long>(base_events));
      return 1;
    }
    const double speedup =
        base_events_per_s > 0.0 ? point.events_per_s / base_events_per_s : 0.0;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\": %d, \"servers\": %d, \"vms\": %lld, "
                  "\"events\": %lld, \"wall_s\": %.4f, \"events_per_s\": %.1f, "
                  "\"speedup_vs_1t\": %.2f}",
                  first ? "" : ", ", point.threads, point.servers,
                  static_cast<long long>(point.vms),
                  static_cast<long long>(point.events), point.wall_s,
                  point.events_per_s, speedup);
    json += buf;
    first = false;
  }
  json += "]}";
  std::printf("scale_threads_json: %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace defl

int main(int argc, char** argv) {
  using namespace defl;
  if (argc >= 2 && std::string(argv[1]) == "threads") {
    if (argc != 2 && argc != 4) {
      // A lone extra arg is ambiguous (servers or vms?); refuse rather than
      // silently running the default config.
      std::fprintf(stderr, "usage: %s threads [servers target_vms]\n", argv[0]);
      return 2;
    }
    const int servers = argc == 4 ? std::atoi(argv[2]) : 1000;
    const int target_vms = argc == 4 ? std::atoi(argv[3]) : 20000;
    return RunThreadSweep(servers, target_vms);
  }
  if (argc >= 2 && std::string(argv[1]) == "cloud") {
    if (argc != 2 && argc != 4 && argc != 5) {
      std::fprintf(stderr, "usage: %s cloud [servers target_vms [threads]]\n",
                   argv[0]);
      return 2;
    }
    const int servers = argc >= 4 ? std::atoi(argv[2]) : 100000;
    const int target_vms = argc >= 4 ? std::atoi(argv[3]) : 2000000;
    const int threads = argc == 5 ? std::atoi(argv[4]) : 1;
    return RunCloudMode(servers, target_vms, threads);
  }
  std::vector<std::pair<int, int>> sweep = {{100, 2000}, {250, 5000}, {1000, 20000}};
  if (argc == 3) {
    sweep = {{std::atoi(argv[1]), std::atoi(argv[2])}};
  }

  bench::PrintHeader("scale_cluster", "placement/lifecycle throughput vs cluster size");
  bench::PrintNote("1.6x offered load, best-fit + cascade deflation; events =");
  bench::PrintNote("launches + rejections + completions + preemptions.");
  bench::PrintColumns({"servers", "vms", "events", "wall-s", "events/s"});

  std::string json = "{\"bench\": \"scale_cluster\", \"points\": [";
  bool first = true;
  for (const auto& [servers, target_vms] : sweep) {
    const ScalePoint point = RunPoint(servers, target_vms);
    bench::PrintCell(static_cast<double>(point.servers));
    bench::PrintCell(static_cast<double>(point.vms));
    bench::PrintCell(static_cast<double>(point.events));
    bench::PrintCell(point.wall_s);
    bench::PrintCell(point.events_per_s);
    bench::EndRow();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"servers\": %d, \"vms\": %lld, \"events\": %lld, "
                  "\"wall_s\": %.4f, \"events_per_s\": %.1f}",
                  first ? "" : ", ", point.servers,
                  static_cast<long long>(point.vms),
                  static_cast<long long>(point.events), point.wall_s,
                  point.events_per_s);
    json += buf;
    first = false;
  }
  json += "]}";
  std::printf("scale_cluster_json: %s\n", json.c_str());
  return 0;
}
