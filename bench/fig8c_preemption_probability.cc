// Figure 8c: probability that a low-priority VM is preempted as a function
// of cluster overcommitment, for deflation-based vs preemption-only
// management. Trace-driven simulation over 100 servers (the paper's §6.3
// methodology, with a synthetic Eucalyptus-like trace). Paper headline:
// with deflation, preemption probability is negligible even at 60%
// overcommitment (1.6x utilization).
#include "bench/bench_util.h"
#include "src/cluster/sim_session.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

ClusterSimResult RunAtLoad(double load, ReclamationStrategy strategy,
                           TelemetryContext* telemetry) {
  ClusterSimConfig config;
  config.num_servers = 100;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 12.0 * 3600.0;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  config.trace.seed = 1234;
  config.trace =
      WithTargetLoad(config.trace, load, config.num_servers, config.server_capacity);
  config.cluster.strategy = strategy;
  config.cluster.controller.mode = DeflationMode::kVmLevel;
  config.sample_period_s = 600.0;
  config.telemetry = telemetry;
  Result<SimSession> session = SimSession::Open(config);
  return session.value().Finish();
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 8c", "VM preemption probability vs overcommitment");
  bench::PrintNote("100 servers, 12 h synthetic trace, 60% low-priority VMs.");
  bench::PrintNote("overcommit% = offered nominal demand beyond capacity.");
  bench::PrintColumns({"overcommit%", "p(deflation)", "p(preempt-only)", "oc-meas(defl)",
                       "util(defl)"});
  int64_t deflate_ops = 0;
  int64_t cascade_stage_events = 0;
  for (const double oc : {0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0, 1.1}) {
    const double load = 1.0 + oc;
    // A fresh context per run: the registry-derived result fields must not
    // mix points across loads.
    TelemetryContext telemetry;
    const ClusterSimResult deflation =
        RunAtLoad(load, ReclamationStrategy::kDeflation, &telemetry);
    const ClusterSimResult preempt =
        RunAtLoad(load, ReclamationStrategy::kPreemptionOnly, nullptr);
    deflate_ops += telemetry.metrics().CounterValue("cascade/deflate/ops");
    cascade_stage_events +=
        telemetry.trace().CountKind(TraceEventKind::kCascadeStage);
    bench::PrintCell(oc * 100.0);
    bench::PrintCell(deflation.preemption_probability);
    bench::PrintCell(preempt.preemption_probability);
    bench::PrintCell(deflation.mean_overcommitment);
    bench::PrintCell(deflation.mean_utilization);
    bench::EndRow();
  }
  std::printf("  (telemetry, deflation runs: %lld deflate ops, %lld cascade stage "
              "events)\n",
              static_cast<long long>(deflate_ops),
              static_cast<long long>(cascade_stage_events));
  return 0;
}
