#include "src/cluster/cluster_sim.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

ClusterSimConfig SmallSim(double target_load, ReclamationStrategy strategy) {
  ClusterSimConfig config;
  config.num_servers = 20;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 3600.0 * 8;
  config.trace.max_lifetime_s = 3600.0 * 6;
  config.trace.seed = 11;
  config.trace =
      WithTargetLoad(config.trace, target_load, config.num_servers, config.server_capacity);
  config.cluster.strategy = strategy;
  config.cluster.controller.mode = DeflationMode::kVmLevel;
  config.sample_period_s = 120.0;
  return config;
}

TEST(ClusterSimTest, LowLoadHasNoPreemptionsEitherWay) {
  for (const ReclamationStrategy strategy :
       {ReclamationStrategy::kDeflation, ReclamationStrategy::kPreemptionOnly}) {
    const ClusterSimResult result = RunClusterSim(SmallSim(0.4, strategy));
    EXPECT_GT(result.counters.launched, 0);
    EXPECT_DOUBLE_EQ(result.preemption_probability, 0.0);
  }
}

TEST(ClusterSimTest, DeflationAvoidsPreemptionsUnderOvercommitment) {
  // The Figure 8c claim: at ~1.6x offered load, deflation keeps preemption
  // probability negligible while preemption-only revokes a large fraction.
  const ClusterSimResult deflation =
      RunClusterSim(SmallSim(1.6, ReclamationStrategy::kDeflation));
  const ClusterSimResult preemption =
      RunClusterSim(SmallSim(1.6, ReclamationStrategy::kPreemptionOnly));
  EXPECT_LT(deflation.preemption_probability, 0.05);
  EXPECT_GT(preemption.preemption_probability, 5.0 * deflation.preemption_probability);
  EXPECT_GT(preemption.preemption_probability, 0.1);
}

TEST(ClusterSimTest, DeflationSustainsHigherOvercommitment) {
  const ClusterSimResult result =
      RunClusterSim(SmallSim(1.6, ReclamationStrategy::kDeflation));
  EXPECT_GT(result.peak_overcommitment, 1.2);
  EXPECT_GT(result.mean_utilization, 0.6);
}

TEST(ClusterSimTest, PreemptionProbabilityGrowsWithLoad) {
  double prev = -1.0;
  for (const double load : {0.8, 1.4, 2.0}) {
    const ClusterSimResult result =
        RunClusterSim(SmallSim(load, ReclamationStrategy::kPreemptionOnly));
    EXPECT_GE(result.preemption_probability, prev - 0.02) << "load " << load;
    prev = result.preemption_probability;
  }
}

TEST(ClusterSimTest, SamplesCollectedForAllServers) {
  const ClusterSimConfig config = SmallSim(1.0, ReclamationStrategy::kDeflation);
  const ClusterSimResult result = RunClusterSim(config);
  const auto expected_samples =
      static_cast<size_t>(config.trace.duration_s / config.sample_period_s) *
      static_cast<size_t>(config.num_servers);
  EXPECT_NEAR(static_cast<double>(result.server_overcommitment_samples.size()),
              static_cast<double>(expected_samples),
              static_cast<double>(config.num_servers) * 2.0);
}

TEST(ClusterSimTest, UsageSummaryIsAccumulated) {
  const ClusterSimResult r =
      RunClusterSim(SmallSim(1.2, ReclamationStrategy::kDeflation));
  EXPECT_GT(r.usage.low_pri_vm_hours, 0.0);
  EXPECT_GT(r.usage.low_pri_nominal_cpu_hours, 0.0);
  EXPECT_GT(r.usage.high_pri_cpu_hours, 0.0);
  // Effective never exceeds nominal; quality is a fraction.
  EXPECT_LE(r.usage.low_pri_effective_cpu_hours,
            r.usage.low_pri_nominal_cpu_hours + 1e-9);
  EXPECT_GT(r.low_priority_allocation_quality, 0.0);
  EXPECT_LE(r.low_priority_allocation_quality, 1.0 + 1e-9);
  EXPECT_EQ(r.usage.preemptions, r.counters.preempted);
}

TEST(ClusterSimTest, PeriodicReinflationImprovesAllocationQuality) {
  ClusterSimConfig base = SmallSim(1.5, ReclamationStrategy::kDeflation);
  const ClusterSimResult lazy = RunClusterSim(base);
  base.reinflate_period_s = 300.0;
  const ClusterSimResult proactive = RunClusterSim(base);
  // Proactively returning freed resources gives transient VMs a larger
  // share of their nominal allocation.
  EXPECT_GE(proactive.low_priority_allocation_quality,
            lazy.low_priority_allocation_quality - 1e-6);
  EXPECT_GE(proactive.usage.low_pri_effective_cpu_hours,
            lazy.usage.low_pri_effective_cpu_hours - 1e-6);
}

TEST(ClusterSimTest, PredictiveHoldbackStillPlacesEverything) {
  ClusterSimConfig config = SmallSim(1.2, ReclamationStrategy::kDeflation);
  config.reinflate_period_s = 300.0;
  config.predictive_holdback = true;
  const ClusterSimResult r = RunClusterSim(config);
  EXPECT_DOUBLE_EQ(r.preemption_probability, 0.0);
  EXPECT_GT(r.counters.launched, 0);
  EXPECT_LT(r.rejection_rate, 0.05);
}

TEST(ClusterSimTest, CountersAreConsistent) {
  const ClusterSimResult result =
      RunClusterSim(SmallSim(1.2, ReclamationStrategy::kDeflation));
  EXPECT_GE(result.counters.launched, result.counters.completed);
  EXPECT_GE(result.counters.launched_low_priority, result.counters.preempted);
  EXPECT_GE(result.rejection_rate, 0.0);
  EXPECT_LE(result.rejection_rate, 1.0);
}

}  // namespace
}  // namespace defl
