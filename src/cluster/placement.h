// Deflation-aware VM placement (Section 5): multi-dimensional bin packing
// where a server's availability is free + deflatable resources, and fitness
// is the cosine similarity between the VM's demand vector and the server's
// availability vector. Three policies from the paper: best-fit, first-fit,
// and 2-choices (sample two random servers, keep the fitter one).
#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/cluster/fleet_view.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/hypervisor/server.h"
#include "src/resources/resource_vector.h"

namespace defl {

enum class PlacementPolicy { kBestFit, kFirstFit, kTwoChoices };

const char* PlacementPolicyName(PlacementPolicy policy);

// What counts as a server's availability for a given arrival:
//   kFreeOnly            -- untouched resources only (no reclamation),
//   kFreePlusDeflatable  -- free + what deflation can reclaim (low-priority
//                           arrivals under deflation-based management),
//   kFreePlusPreemptible -- free + everything low-priority VMs hold (high-
//                           priority arrivals, which may displace them).
enum class AvailabilityMode { kFreeOnly, kFreePlusDeflatable, kFreePlusPreemptible };

// fitness(D, A) = (A . D) / (|A| |D|); higher is better.
double PlacementFitness(const ResourceVector& demand, const ResourceVector& availability);

ResourceVector ServerAvailability(const Server& server, AvailabilityMode mode);

// Picks a server whose availability (per `mode`) covers `demand`. Returns an
// index into `servers` or an error when no server is feasible.
//
// With a non-null `pool`, the candidate scan is sharded across the pool's
// threads: each chunk of candidates is scored by one thread (reading only
// its own chunk's servers, which may lazily refresh their accounting caches
// -- the per-shard-ownership rule of DESIGN.md §10), and the per-chunk
// results are folded with order-independent reductions (min feasible index
// for first-fit, max fitness with lowest-index tie-break for best-fit). The
// chosen server is therefore byte-identical to the sequential scan for any
// pool size and any chunking. 2-choices consumes the caller's RNG stream on
// the calling thread exactly as before; only its full-scan fallback shards.
Result<size_t> PlaceVm(const ResourceVector& demand,
                       const std::vector<Server*>& servers, PlacementPolicy policy,
                       Rng& rng, AvailabilityMode mode = AvailabilityMode::kFreePlusDeflatable,
                       ThreadPool* pool = nullptr);

// Availability of one FleetView row under `mode`, assembled from the flat
// columns with the same elementwise adds as ServerAvailability -- the bits
// are identical to the object-graph path for a coherent view.
ResourceVector FleetAvailability(const FleetView& fleet, size_t row,
                                 AvailabilityMode mode);

// Structure-of-arrays variant of PlaceVm: scans the FleetView's flat
// columns instead of Server objects. `candidates` lists the eligible rows
// (ascending for the canonical placement order); the returned index is a
// POSITION in `candidates`, mirroring PlaceVm's index-into-`servers`
// contract. Refreshes the view first (O(1) when clean), so the decision --
// feasibility, fitness, every tie-break, and the 2-choices RNG draw
// sequence -- is bit-identical to PlaceVm over the equivalent Server list.
// The sharded scan chunks candidate index ranges; workers read only the
// contiguous columns, never the Server objects.
Result<size_t> PlaceVmFleet(const ResourceVector& demand, FleetView& fleet,
                            const std::vector<uint32_t>& candidates,
                            PlacementPolicy policy, Rng& rng,
                            AvailabilityMode mode = AvailabilityMode::kFreePlusDeflatable,
                            ThreadPool* pool = nullptr);

}  // namespace defl

#endif  // SRC_CLUSTER_PLACEMENT_H_
