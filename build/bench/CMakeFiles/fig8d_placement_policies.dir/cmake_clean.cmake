file(REMOVE_RECURSE
  "CMakeFiles/fig8d_placement_policies.dir/fig8d_placement_policies.cc.o"
  "CMakeFiles/fig8d_placement_policies.dir/fig8d_placement_policies.cc.o.d"
  "fig8d_placement_policies"
  "fig8d_placement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8d_placement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
