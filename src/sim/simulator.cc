#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace defl {

void EventHandle::Cancel() {
  if (state_ != nullptr) {
    *state_ = true;
  }
}

EventHandle Simulator::Push(SimTime when, std::function<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Entry{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

EventHandle Simulator::At(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  return Push(when, std::move(fn));
}

EventHandle Simulator::After(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  return Push(now_ + delay, std::move(fn));
}

EventHandle Simulator::Every(SimTime period, std::function<void()> fn) {
  assert(period > 0.0);
  auto cancelled = std::make_shared<bool>(false);
  // Self-rescheduling wrapper; shares one cancellation flag across firings.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  std::weak_ptr<std::function<void(SimTime)>> weak_tick = tick;
  *tick = [this, period, fn = std::move(fn), cancelled, weak_tick](SimTime when) {
    if (*cancelled) {
      return;
    }
    fn();
    if (*cancelled) {
      return;
    }
    if (auto self = weak_tick.lock()) {
      queue_.push(Entry{when + period, next_seq_++,
                        [self, when, period] { (*self)(when + period); }, cancelled});
    }
  };
  queue_.push(Entry{now_ + period, next_seq_++,
                    [tick, first = now_ + period] { (*tick)(first); }, cancelled});
  return EventHandle(std::move(cancelled));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (*entry.cancelled) {
      continue;
    }
    assert(entry.when >= now_);
    now_ = entry.when;
    ++events_executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Simulator::Run(SimTime until) {
  while (!queue_.empty()) {
    if (until != kNoLimit && queue_.top().when > until) {
      now_ = until;
      return;
    }
    Step();
  }
  if (until != kNoLimit && until > now_) {
    now_ = until;
  }
}

}  // namespace defl
