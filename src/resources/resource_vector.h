// ResourceVector: the 4-dimensional resource quantity used throughout the
// paper and this reproduction -- (CPU cores, memory MB, disk bandwidth MB/s,
// network bandwidth MB/s). Deflation targets, VM specs, server capacities and
// reclamation results are all ResourceVectors.
#ifndef SRC_RESOURCES_RESOURCE_VECTOR_H_
#define SRC_RESOURCES_RESOURCE_VECTOR_H_

#include <array>
#include <cstddef>
#include <string>

namespace defl {

enum class ResourceKind : int { kCpu = 0, kMemory = 1, kDiskBw = 2, kNetBw = 3 };

inline constexpr int kNumResources = 4;
inline constexpr std::array<ResourceKind, kNumResources> kAllResources = {
    ResourceKind::kCpu, ResourceKind::kMemory, ResourceKind::kDiskBw, ResourceKind::kNetBw};

const char* ResourceKindName(ResourceKind kind);

class ResourceVector {
 public:
  constexpr ResourceVector() : v_{} {}
  constexpr ResourceVector(double cpu, double memory_mb, double disk_bw = 0.0,
                           double net_bw = 0.0)
      : v_{cpu, memory_mb, disk_bw, net_bw} {}

  static constexpr ResourceVector Zero() { return ResourceVector(); }
  // All dimensions set to the same value (useful for scalar comparisons).
  static constexpr ResourceVector Uniform(double x) { return ResourceVector(x, x, x, x); }

  double cpu() const { return v_[0]; }
  double memory_mb() const { return v_[1]; }
  double disk_bw() const { return v_[2]; }
  double net_bw() const { return v_[3]; }

  double operator[](ResourceKind kind) const { return v_[static_cast<size_t>(kind)]; }
  double& operator[](ResourceKind kind) { return v_[static_cast<size_t>(kind)]; }

  ResourceVector operator+(const ResourceVector& o) const;
  ResourceVector operator-(const ResourceVector& o) const;
  ResourceVector operator*(double s) const;
  ResourceVector operator/(double s) const;
  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  bool operator==(const ResourceVector& o) const = default;

  // Element-wise operations.
  ResourceVector Min(const ResourceVector& o) const;
  ResourceVector Max(const ResourceVector& o) const;
  // Clamps every dimension to be >= 0.
  ResourceVector ClampNonNegative() const;
  // Element-wise multiply (e.g. scaling a spec by per-dimension fractions).
  ResourceVector Scale(const ResourceVector& fractions) const;
  // Element-wise divide; dimensions where `o` is 0 yield 0.
  ResourceVector SafeDivide(const ResourceVector& o) const;

  // True if every dimension of this is <= the corresponding dim of o + eps.
  bool AllLeq(const ResourceVector& o, double eps = 1e-9) const;
  // True if any dimension exceeds eps.
  bool AnyPositive(double eps = 1e-9) const;
  bool IsZero(double eps = 1e-9) const { return !AnyPositive(eps); }

  double Dot(const ResourceVector& o) const;
  double Norm() const;
  // max_i v_i; the "dominant" magnitude used for aggregate deflation checks.
  double MaxComponent() const;
  double MinComponent() const;
  double Sum() const;

  // Cosine similarity in [0, 1] for non-negative vectors; the paper's
  // placement "fitness" between a VM demand and server availability.
  // Returns 0 if either vector is all-zero.
  static double CosineSimilarity(const ResourceVector& a, const ResourceVector& b);

  // "(cpu=4, mem=16384MB, disk=100MB/s, net=1000MB/s)"
  std::string ToString() const;

 private:
  std::array<double, kNumResources> v_;
};

inline ResourceVector operator*(double s, const ResourceVector& v) { return v * s; }

}  // namespace defl

#endif  // SRC_RESOURCES_RESOURCE_VECTOR_H_
