#include "src/hypervisor/server.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/common/logging.h"

namespace defl {

Server::Server(ServerId id, ResourceVector capacity) : id_(id), capacity_(capacity) {}

void Server::AttachTelemetry(TelemetryContext* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.vms_added = registry.Counter("server/vm/added");
  metrics_.vms_removed = registry.Counter("server/vm/removed");
  metrics_.overcommit_entries = registry.Counter("server/overcommit/entries");
}

void Server::RecordOvercommitTransition(double before, int64_t vm) {
  const double after = NominalOvercommitment();
  const bool was_over = before > 1.0 + 1e-9;
  const bool is_over = after > 1.0 + 1e-9;
  if (was_over == is_over) {
    return;
  }
  if (is_over) {
    telemetry_->metrics().Add(metrics_.overcommit_entries);
  }
  // Reuse the target vector to carry the overcommit factors: cpu slot =
  // factor before the transition, memory slot = factor after.
  ResourceVector factors;
  factors[ResourceKind::kCpu] = before;
  factors[ResourceKind::kMemory] = after;
  telemetry_->trace().Record(
      is_over ? TraceEventKind::kOvercommitEnter : TraceEventKind::kOvercommitExit,
      CascadeLayer::kHypervisor, vm, id_, factors, ResourceVector::Zero(), 0);
}

Vm* Server::AddVm(std::unique_ptr<Vm> vm) {
  assert(vm != nullptr);
  if (!vm->effective().AllLeq(Free())) {
    DEFL_LOG(kWarn) << "server " << id_ << ": admitting VM " << vm->id()
                    << " beyond free capacity";
  }
  vm->set_state(VmState::kRunning);
  const double oc_before = telemetry_ != nullptr ? NominalOvercommitment() : 0.0;
  vms_.push_back(std::move(vm));
  Vm* added = vms_.back().get();
  added->set_allocation_listener(this);
  OnAllocationChanged();
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.vms_added);
    telemetry_->trace().Record(TraceEventKind::kVmLaunch, CascadeLayer::kNone,
                               added->id(), id_, added->size(), added->effective(), 0);
    RecordOvercommitTransition(oc_before, added->id());
  }
  return added;
}

std::unique_ptr<Vm> Server::RemoveVm(VmId id) {
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [id](const auto& vm) { return vm->id() == id; });
  if (it == vms_.end()) {
    return nullptr;
  }
  const double oc_before = telemetry_ != nullptr ? NominalOvercommitment() : 0.0;
  std::unique_ptr<Vm> out = std::move(*it);
  vms_.erase(it);
  out->set_allocation_listener(nullptr);
  OnAllocationChanged();
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.vms_removed);
    telemetry_->trace().Record(TraceEventKind::kVmRemove, CascadeLayer::kNone,
                               out->id(), id_, out->size(), out->effective(), 0);
    RecordOvercommitTransition(oc_before, out->id());
  }
  return out;
}

Vm* Server::FindVm(VmId id) {
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [id](const auto& vm) { return vm->id() == id; });
  return it != vms_.end() ? it->get() : nullptr;
}

ServerAccounting Server::RecomputeAccounting() const {
  // One pass, but each aggregate folds its own accumulator in hosting
  // order: the result is bit-identical to the dedicated per-aggregate loops
  // this cache replaced (placement output must not shift by even one ulp).
  ServerAccounting out;
  for (const auto& vm : vms_) {
    out.allocated += vm->effective();
    out.deflatable += vm->deflatable_amount();
    if (vm->priority() == VmPriority::kLow) {
      out.preemptible += vm->effective();
    }
    out.nominal += vm->size();
  }
  return out;
}

bool Server::AccountingConsistent() const {
  return accounting_dirty_ || accounting_ == RecomputeAccounting();
}

const ServerAccounting& Server::accounting() const {
  if (accounting_dirty_) {
    accounting_ = RecomputeAccounting();
    accounting_dirty_ = false;
  }
#ifdef DEFL_CHECK_ACCOUNTING
  else if (!AccountingConsistent()) {
    // A mutation bypassed the AllocationListener hooks: the cached
    // aggregates no longer match the hosted VMs. This is a bug in whatever
    // mutated the VM, not recoverable bookkeeping -- fail loudly.
    DEFL_LOG(kError) << "server " << id_
                     << ": cached accounting drifted from recompute "
                        "(allocation mutated without notification)";
    std::abort();
  }
#endif
  return accounting_;
}

ResourceVector Server::Allocated() const { return accounting().allocated; }

ResourceVector Server::Free() const {
  return (capacity_ - Allocated()).ClampNonNegative();
}

ResourceVector Server::Deflatable() const { return accounting().deflatable; }

ResourceVector Server::Availability() const { return Free() + Deflatable(); }

ResourceVector Server::Preemptible() const { return accounting().preemptible; }

ResourceVector Server::NominalDemand() const { return accounting().nominal; }

double Server::NominalOvercommitment() const {
  const ResourceVector& nominal = accounting().nominal;
  double oc = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity_[kind] > 0.0) {
      oc = std::max(oc, nominal[kind] / capacity_[kind]);
    }
  }
  return oc;
}

double Server::Utilization() const {
  const ResourceVector alloc = Allocated();
  double util = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity_[kind] > 0.0) {
      util = std::max(util, alloc[kind] / capacity_[kind]);
    }
  }
  return std::min(util, 1.0);
}

bool Server::CanFitWithDeflation(const ResourceVector& demand) const {
  return demand.AllLeq(Availability());
}

}  // namespace defl
