// Gang-synchronous MPI job model: the paper's canonical *inelastic*
// application ("synchronous MPI programs ... the application deflation
// policy is to simply ignore the deflation request", Section 3.2.1). Ranks
// are pinned one per vCPU across a set of VMs and synchronize every
// timestep, so the whole job advances at the pace of its slowest rank --
// deflating one VM drags everyone. This is exactly why the cluster manager
// deflates proportionally (equal fractions) rather than dumping the
// shortfall on one victim.
#ifndef SRC_APPS_MPI_H_
#define SRC_APPS_MPI_H_

#include <string>
#include <vector>

#include "src/apps/app_model.h"
#include "src/hypervisor/overcommit.h"

namespace defl {

struct MpiJobConfig {
  // Per-VM working set; ranks stall on swap like everything else.
  double footprint_mb_per_vm = 8192.0;
  double swap_stall_penalty = 6.0;  // slowdown = 1 + penalty * swap fraction
  double page_zipf_s = 0.9;
  double hv_paging_efficiency = 0.8;
  OvercommitCosts costs;
};

// Spans multiple VMs (unlike AppModel, which is per-VM); evaluate with the
// current allocations of all member VMs.
class MpiJob {
 public:
  explicit MpiJob(const MpiJobConfig& config);

  // Timestep rate of one VM's ranks relative to an undeflated VM, in (0, 1].
  double VmRankSpeed(const Vm& vm) const;

  // Gang-synchronous job speed: min over member VMs (BSP every timestep).
  double JobSpeed(const std::vector<const Vm*>& vms) const;

  // The per-VM inelastic agent: refuses all requests, reports the footprint.
  DeflationAgent* agent() { return &agent_; }

  const MpiJobConfig& config() const { return config_; }

 private:
  MpiJobConfig config_;
  InelasticAgent agent_;
};

}  // namespace defl

#endif  // SRC_APPS_MPI_H_
