# Empty dependencies file for defl_cluster.
# This may be replaced when dependencies are built.
