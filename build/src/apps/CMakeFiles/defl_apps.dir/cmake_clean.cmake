file(REMOVE_RECURSE
  "CMakeFiles/defl_apps.dir/deflation_harness.cc.o"
  "CMakeFiles/defl_apps.dir/deflation_harness.cc.o.d"
  "CMakeFiles/defl_apps.dir/jvm.cc.o"
  "CMakeFiles/defl_apps.dir/jvm.cc.o.d"
  "CMakeFiles/defl_apps.dir/kernel_compile.cc.o"
  "CMakeFiles/defl_apps.dir/kernel_compile.cc.o.d"
  "CMakeFiles/defl_apps.dir/memcached.cc.o"
  "CMakeFiles/defl_apps.dir/memcached.cc.o.d"
  "CMakeFiles/defl_apps.dir/memcached_sim.cc.o"
  "CMakeFiles/defl_apps.dir/memcached_sim.cc.o.d"
  "CMakeFiles/defl_apps.dir/mpi.cc.o"
  "CMakeFiles/defl_apps.dir/mpi.cc.o.d"
  "CMakeFiles/defl_apps.dir/web_cluster.cc.o"
  "CMakeFiles/defl_apps.dir/web_cluster.cc.o.d"
  "CMakeFiles/defl_apps.dir/webserver.cc.o"
  "CMakeFiles/defl_apps.dir/webserver.cc.o.d"
  "libdefl_apps.a"
  "libdefl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
