// Guest operating system model: tracks what the guest kernel would know --
// application memory footprint, reclaimable page cache, pinned vCPUs -- and
// implements agent-based best-effort resource hot-unplug with the safety
// semantics described in the paper (Section 3.2.2 / Section 5): unplug
// operations may partially fail, and the safe policy refuses to take memory
// the application is actually using.
#ifndef SRC_HYPERVISOR_GUEST_OS_H_
#define SRC_HYPERVISOR_GUEST_OS_H_

#include <memory>

#include "src/faults/fault_injector.h"
#include "src/resources/resource_vector.h"

namespace defl {

// Observer notified after any mutation that can change a VM's visible or
// physically backed allocation (hot-unplug/replug, balloon traffic,
// hypervisor reclaim/release). The hypervisor layer uses it to keep the
// per-server accounting caches coherent without rescanning hosted VMs: a
// mutation that bypasses the hook would silently desynchronize the cached
// aggregates, so every allocation-changing path below must notify.
class AllocationListener {
 public:
  virtual ~AllocationListener() = default;
  virtual void OnAllocationChanged() = 0;
};

class GuestOs {
 public:
  struct Params {
    // Memory the kernel itself needs; unplug never goes below this.
    double kernel_reserve_mb = 512.0;
    // Fraction of nominally free memory that can actually be offlined;
    // the rest is blocked by unmovable pages (fragmentation).
    double unplug_efficiency = 0.92;
    // The OS always keeps at least one online CPU.
    int min_cpus = 1;
    // Failure injection: each memory unplug delivers only a random
    // (1 - flakiness*U[0,1]) fraction of what was computed as available --
    // "hot unplugging of resources may fail or only succeed in partial
    // reclamation" (Section 3.2.2). 0 disables. Deterministic per
    // fault_seed. Compatibility path: these params build a private
    // single-rule FaultInjector; runs with a full FaultPlan attach a shared
    // injector via AttachFaultInjector() instead (kUnplugPartial rules).
    double unplug_flakiness = 0.0;
    uint64_t fault_seed = 0;
    // Ballooning fragmentation: inflating the balloon scatters pinned pages
    // through the guest's address space, wasting this fraction of the
    // ballooned amount in unusable slivers (why hotplug beats ballooning,
    // Section 7 [47, 54]).
    double balloon_fragmentation = 0.08;
  };

  // `spec` is the VM's nominal size; the guest starts seeing all of it.
  explicit GuestOs(const ResourceVector& spec);
  GuestOs(const ResourceVector& spec, const Params& params);

  // --- State the guest kernel observes ---

  // Resources currently online in the guest (spec - unplugged).
  ResourceVector visible() const { return spec_ - unplugged_; }
  const ResourceVector& unplugged() const { return unplugged_; }

  // Application anonymous memory footprint (set by the app model / agent).
  double app_used_mb() const { return app_used_mb_; }
  void set_app_used_mb(double mb) { app_used_mb_ = mb; }

  // Page cache: reclaimable by the OS under pressure, so it does not block
  // unplug, but dropping it has an (application-model-level) cost.
  double page_cache_mb() const { return page_cache_mb_; }
  void set_page_cache_mb(double mb) { page_cache_mb_ = mb; }

  // vCPUs with pinned tasks: generally not safely unpluggable.
  int pinned_cpus() const { return pinned_cpus_; }
  void set_pinned_cpus(int n) { pinned_cpus_ = n; }

  // --- Unplug/replug mechanism ---

  // Resources that can be unplugged without endangering the application:
  // free memory plus the reclaimable page cache (the OS "can reduce the
  // size of its disk caches", Section 3.1) after the kernel reserve and the
  // app footprint, scaled by unplug efficiency; and unpinned CPUs beyond
  // the minimum. Disk/network are never unplugged (unsafe; Section 3.2.2).
  ResourceVector SafelyUnpluggable() const;

  // Best-effort unplug toward `target` (absolute amounts). CPU unplugs in
  // whole units. When force is false the request is clamped to
  // SafelyUnpluggable(); when force is true (the OS-only baseline) memory is
  // taken regardless of the app footprint -- the application may then OOM,
  // which the app model surfaces as termination. Returns what was actually
  // unplugged.
  ResourceVector TryUnplug(const ResourceVector& target, bool force = false);

  // Returns previously unplugged resources to the guest, up to `amount`.
  // Returns what was actually replugged.
  ResourceVector Replug(const ResourceVector& amount);

  // --- Balloon driver (the classic guest-aware memory reclamation that
  // cascade deflation replaces with hot-unplug; kept as a comparison
  // baseline). The balloon pins guest pages and returns them to the host;
  // the guest still *sees* the memory but cannot use it, and fragmentation
  // wastes an extra slice. Best-effort: clamped to safely-free memory. ---

  // Inflates by up to `mb`; returns the amount actually pinned.
  double BalloonInflate(double mb);
  // Deflates by up to `mb`; returns the amount released back to the guest.
  double BalloonDeflate(double mb);
  double balloon_mb() const { return balloon_mb_; }
  // Memory the guest cannot use because of balloon fragmentation.
  double BalloonFragmentationMb() const {
    return balloon_mb_ * params_.balloon_fragmentation;
  }
  // Guest memory actually usable by applications: visible minus the balloon
  // and its fragmentation waste.
  double UsableMemoryMb() const;

  // True if the guest-visible memory can no longer hold the application
  // (the OOM-kill condition used by app models under forced unplug).
  bool UnderOomPressure() const;

  // Registers the observer notified after every allocation-changing
  // mutation (unplug/replug/balloon). The owning Vm installs itself here and
  // forwards to its host server's accounting cache. nullptr detaches.
  void set_allocation_listener(AllocationListener* listener) { listener_ = listener; }

  // Routes unplug fault sampling through a shared injector (kUnplugPartial
  // rules), replacing any Params-derived private one. `vm_id` scopes the
  // sampling site so per-VM rules and streams stay independent.
  void AttachFaultInjector(FaultInjector* injector, int64_t vm_id);
  // Scope used for fault sampling (set by the owning Vm).
  void set_fault_scope(int64_t vm_id) { fault_vm_ = vm_id; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  const Params& params() const { return params_; }
  const ResourceVector& spec() const { return spec_; }

  // Deterministic checkpoint/restore (SimSession snapshots): reinstates the
  // mechanism-level state directly, without replaying TryUnplug/Balloon*
  // (which would consume fault-injector draws the snapshotting run already
  // took). App footprint/page cache/pinned CPUs restore through their
  // ordinary setters.
  void RestoreDeflationState(const ResourceVector& unplugged, double balloon_mb) {
    unplugged_ = unplugged;
    balloon_mb_ = balloon_mb;
    NotifyAllocationChanged();
  }

 private:
  void NotifyAllocationChanged() {
    if (listener_ != nullptr) {
      listener_->OnAllocationChanged();
    }
  }

  ResourceVector spec_;
  Params params_;
  AllocationListener* listener_ = nullptr;
  // Compatibility: a private injector synthesized from Params::unplug_
  // flakiness/fault_seed when no shared one is attached.
  std::unique_ptr<FaultInjector> owned_injector_;
  FaultInjector* fault_injector_ = nullptr;
  int64_t fault_vm_ = -1;
  ResourceVector unplugged_;
  double balloon_mb_ = 0.0;
  double app_used_mb_ = 0.0;
  double page_cache_mb_ = 0.0;
  int pinned_cpus_ = 0;
};

}  // namespace defl

#endif  // SRC_HYPERVISOR_GUEST_OS_H_
