# Empty dependencies file for overcommit_test.
# This may be replaced when dependencies are built.
