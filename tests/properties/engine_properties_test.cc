// Property tests of the Spark engine under randomized disruption schedules:
//
//   P1  liveness: the job always completes (given eventual capacity),
//       whatever sequence of self-deflations / reinflations / VM-level
//       deflations is applied;
//   P2  progress monotonicity;
//   P3  every partition of every stage was computed at least once, and the
//       final makespan is never below the undisturbed one;
//   P4  determinism: identical seeds give identical makespans.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/common/rng.h"
#include "src/core/cascade.h"
#include "src/spark/engine.h"
#include "src/spark/experiment.h"

namespace defl {
namespace {

struct Fixture {
  explicit Fixture(SparkWorkload workload) {
    for (int i = 0; i < 8; ++i) {
      VmSpec spec;
      spec.name = "w" + std::to_string(i);
      spec.size = ResourceVector(4.0, 16384.0, 200.0, 1250.0);
      vms.push_back(std::make_unique<Vm>(i, spec));
      vms.back()->set_state(VmState::kRunning);
    }
    std::vector<Vm*> raw;
    for (auto& vm : vms) {
      raw.push_back(vm.get());
    }
    engine = std::make_unique<SparkEngine>(&sim, std::move(workload), raw);
  }

  Simulator sim;
  std::vector<std::unique_ptr<Vm>> vms;
  std::unique_ptr<SparkEngine> engine;
};

using FuzzCase = std::tuple<int /*workload*/, uint64_t /*seed*/>;

SparkWorkload PickWorkload(int which) {
  switch (which) {
    case 0:
      return MakeAlsWorkload(0.2);
    case 1:
      return MakeKmeansWorkload(0.2);
    default:
      return MakeCnnWorkload(0.2);
  }
}

class EngineFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EngineFuzzTest, SurvivesRandomDisruptionSchedule) {
  const auto [which, seed] = GetParam();
  const SparkWorkload workload = PickWorkload(which);
  Fixture f(workload);
  Rng rng(seed);
  CascadeController cascade(DeflationMode::kVmLevel);

  const double baseline = [&workload] {
    Fixture clean(workload);
    clean.engine->Start();
    clean.sim.Run();
    EXPECT_TRUE(clean.engine->done());
    return clean.engine->finish_time();
  }();

  f.engine->Start();
  double last_progress = 0.0;
  // A random disruption every few seconds until t = 600; liveness requires
  // pressure to eventually stop, since synchronous workloads lose all
  // progress on every kill (they would livelock under unbounded disruption).
  EventHandle disruptor = f.sim.Every(3.0, [&] {
    if (f.engine->done()) {
      return;
    }
    // P2 check while we are here.
    const double p = f.engine->Progress();
    ASSERT_GE(p, last_progress - 1e-12);
    last_progress = p;

    const auto victim = static_cast<size_t>(rng.UniformInt(0, 7));
    Vm& vm = *f.vms[victim];
    const int action = static_cast<int>(rng.UniformInt(0, 2));
    if (action == 0) {
      const double frac = rng.Uniform(0.1, 0.6);
      vm.guest_os().set_app_used_mb(10000.0);
      cascade.Deflate(vm, nullptr, vm.size() * frac);
      f.engine->OnAllocationChanged();
    } else if (action == 1) {
      f.engine->SelfDeflateVm(vm.id(), vm.size() * rng.Uniform(0.1, 0.6));
    } else {
      // Undo everything on this VM.
      const ResourceVector back = vm.size() - vm.effective();
      cascade.Reinflate(vm, nullptr, back);
      f.engine->ReinflateVm(vm.id(), vm.size());
      f.engine->OnAllocationChanged();
    }
  });
  // Make sure pressure eventually ends so the run can finish.
  f.sim.At(600.0, [&] {
    disruptor.Cancel();
    for (auto& vm : f.vms) {
      cascade.Reinflate(*vm, nullptr, vm->size() - vm->effective());
      f.engine->ReinflateVm(vm->id(), vm->size());
    }
    f.engine->OnAllocationChanged();
  });

  f.sim.Run(100000.0);
  ASSERT_TRUE(f.engine->done()) << workload.name << " seed " << seed;
  // P3: completion implies full progress and a makespan >= baseline.
  EXPECT_NEAR(f.engine->Progress(), 1.0, 1e-9);
  EXPECT_GE(f.engine->finish_time(), baseline - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineFuzzTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3u, 31u, 313u)));

class ExperimentDeterminismTest
    : public ::testing::TestWithParam<SparkReclamationApproach> {};

TEST_P(ExperimentDeterminismTest, IdenticalConfigsGiveIdenticalMakespans) {
  const SparkWorkload wl = MakeAlsWorkload(0.2);
  SparkExperimentConfig config;
  config.approach = GetParam();
  config.deflation_fraction = 0.5;
  const SparkExperimentResult a = RunSparkExperiment(wl, config);
  const SparkExperimentResult b = RunSparkExperiment(wl, config);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.tasks_killed, b.tasks_killed);
  EXPECT_EQ(a.recomputed_tasks, b.recomputed_tasks);
}

INSTANTIATE_TEST_SUITE_P(Approaches, ExperimentDeterminismTest,
                         ::testing::Values(SparkReclamationApproach::kCascadePolicy,
                                           SparkReclamationApproach::kSelfDeflation,
                                           SparkReclamationApproach::kVmLevel,
                                           SparkReclamationApproach::kPreemption));

// Sweep: deflation overhead is monotone-ish in the deflation fraction for
// VM-level reclamation (no recomputation noise).
class VmLevelMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(VmLevelMonotoneTest, OverheadGrowsWithDeflation) {
  const SparkWorkload wl =
      GetParam() == 0 ? MakeAlsWorkload(0.2) : MakeKmeansWorkload(0.2);
  SparkExperimentConfig config;
  config.approach = SparkReclamationApproach::kVmLevel;
  double prev = 0.0;
  for (const double f : {0.0, 0.2, 0.4, 0.6}) {
    config.deflation_fraction = f;
    const SparkExperimentResult r = RunSparkExperiment(wl, config);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.makespan_s, prev - 1e-6) << "at fraction " << f;
    prev = r.makespan_s;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, VmLevelMonotoneTest, ::testing::Values(0, 1));

}  // namespace
}  // namespace defl
