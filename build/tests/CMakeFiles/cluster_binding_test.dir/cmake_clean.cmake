file(REMOVE_RECURSE
  "CMakeFiles/cluster_binding_test.dir/spark/cluster_binding_test.cc.o"
  "CMakeFiles/cluster_binding_test.dir/spark/cluster_binding_test.cc.o.d"
  "cluster_binding_test"
  "cluster_binding_test.pdb"
  "cluster_binding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_binding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
