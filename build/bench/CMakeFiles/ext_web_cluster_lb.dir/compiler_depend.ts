# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ext_web_cluster_lb.
