
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/deflation_harness.cc" "src/apps/CMakeFiles/defl_apps.dir/deflation_harness.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/deflation_harness.cc.o.d"
  "/root/repo/src/apps/jvm.cc" "src/apps/CMakeFiles/defl_apps.dir/jvm.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/jvm.cc.o.d"
  "/root/repo/src/apps/kernel_compile.cc" "src/apps/CMakeFiles/defl_apps.dir/kernel_compile.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/kernel_compile.cc.o.d"
  "/root/repo/src/apps/memcached.cc" "src/apps/CMakeFiles/defl_apps.dir/memcached.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/memcached.cc.o.d"
  "/root/repo/src/apps/memcached_sim.cc" "src/apps/CMakeFiles/defl_apps.dir/memcached_sim.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/memcached_sim.cc.o.d"
  "/root/repo/src/apps/mpi.cc" "src/apps/CMakeFiles/defl_apps.dir/mpi.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/mpi.cc.o.d"
  "/root/repo/src/apps/web_cluster.cc" "src/apps/CMakeFiles/defl_apps.dir/web_cluster.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/web_cluster.cc.o.d"
  "/root/repo/src/apps/webserver.cc" "src/apps/CMakeFiles/defl_apps.dir/webserver.cc.o" "gcc" "src/apps/CMakeFiles/defl_apps.dir/webserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/defl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/defl_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/defl_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/defl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
