// Figure 8a: total cluster throughput when high-priority memcached VMs
// arrive on a cluster running Spark CNN training on low-priority deflatable
// VMs. Runs through the real management plane: the memcached VMs are placed
// by the local deflation controller, which cascade-deflates the Spark VMs
// (consulting the driver's policy via their agents); when memcached leaves,
// the reverse cascade reinflates them. Total normalized throughput peaks
// near 1.8x of a single application.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/spark/cluster_binding.h"
#include "src/spark/workload.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

constexpr double kBinS = 300.0;
constexpr double kHorizonS = 7200.0;           // 2-hour scenario
constexpr double kMemcachedArriveS = 1800.0;   // minute 30
constexpr double kMemcachedLeaveS = 5400.0;    // minute 90
constexpr double kScale = 5.0;                 // ~1-minute iterations...
constexpr int kIterations = 130;               // ...spanning the horizon

struct Run {
  explicit Run(bool with_pressure)
      : server(0, ResourceVector(32.0, 128.0 * 1024.0, 1600.0, 10000.0)) {
    LocalControllerConfig config;
    config.mode = DeflationMode::kCascade;
    controller = std::make_unique<LocalController>(&server, config);
    telemetry.SetClock([this] { return sim.now(); });
    server.AttachTelemetry(&telemetry);
    controller->AttachTelemetry(&telemetry);
    std::vector<Vm*> raw;
    for (int i = 0; i < 8; ++i) {
      VmSpec spec;
      spec.name = "spark-" + std::to_string(i);
      spec.size = ResourceVector(4.0, 16384.0, 200.0, 1250.0);
      spec.priority = VmPriority::kLow;
      raw.push_back(server.AddVm(std::make_unique<Vm>(i, spec)));
    }
    engine = std::make_unique<SparkEngine>(&sim, MakeCnnWorkload(kScale, false, kIterations),
                                           raw);
    engine->AttachTelemetry(&telemetry);
    binding = std::make_unique<SparkClusterBinding>(engine.get(), controller.get(), &sim);
    engine->Start();
    if (with_pressure) {
      sim.At(kMemcachedArriveS, [this] {
        const ResourceVector demand(16.0, 65536.0, 800.0, 5000.0);
        if (controller->MakeRoom(demand).success) {
          VmSpec spec;
          spec.name = "memcached-hp";
          spec.size = demand;
          spec.priority = VmPriority::kHigh;
          server.AddVm(std::make_unique<Vm>(100, spec));
        }
        binding->SyncAllocations();
      });
      sim.At(kMemcachedLeaveS, [this] {
        server.RemoveVm(100);
        controller->ReinflateAll();
        binding->SyncAllocations();
      });
    }
    sim.Run(kHorizonS);
  }

  // Declared before the simulator users so the clock can bind to `sim`; the
  // members are destroyed in reverse order, detaching nothing dangling.
  TelemetryContext telemetry;
  Simulator sim;
  Server server;
  std::unique_ptr<LocalController> controller;
  std::unique_ptr<SparkEngine> engine;
  std::unique_ptr<SparkClusterBinding> binding;
};

std::vector<double> ThroughputBins(const SparkEngine& engine) {
  std::vector<double> bins(static_cast<size_t>(kHorizonS / kBinS), 0.0);
  for (const auto& completion : engine.completion_log()) {
    const auto bin = static_cast<size_t>(completion.time / kBinS);
    if (bin < bins.size()) {
      bins[bin] += completion.records / kBinS;
    }
  }
  return bins;
}

}  // namespace
}  // namespace defl

int main() {
  using namespace defl;
  bench::PrintHeader("Figure 8a", "cluster throughput: Spark CNN + arriving memcached");
  bench::PrintNote("High-priority memcached placed by the local controller minutes");
  bench::PrintNote("30-90; the Spark VMs cascade-deflate (policy consulted via their");
  bench::PrintNote("agents) and reinflate on departure. Each application normalized");
  bench::PrintNote("to its own undisturbed full-cluster throughput.");

  const Run baseline(false);
  const Run pressured(true);
  const std::vector<double> base_bins = ThroughputBins(*baseline.engine);
  const std::vector<double> bins = ThroughputBins(*pressured.engine);
  double base_rate = 0.0;
  for (const double b : base_bins) {
    base_rate += b;
  }
  base_rate /= static_cast<double>(base_bins.size());

  std::printf("  (spark policy rounds: %d vm-level, %d self)\n",
              pressured.binding->vm_level_rounds(),
              pressured.binding->self_deflation_rounds());
  const MetricsRegistry& registry = pressured.telemetry.metrics();
  std::printf("  (telemetry: %lld deflate ops, %lld reinflate ops, "
              "%lld tasks killed, %lld policy decisions)\n",
              static_cast<long long>(registry.CounterValue("cascade/deflate/ops")),
              static_cast<long long>(registry.CounterValue("cascade/reinflate/ops")),
              static_cast<long long>(registry.CounterValue("spark/engine/tasks_killed")),
              static_cast<long long>(registry.CounterValue("spark/policy/decisions")));
  bench::PrintColumns({"minute", "spark", "memcached", "total"});
  for (size_t bin = 0; bin < bins.size(); ++bin) {
    const double t = static_cast<double>(bin) * kBinS;
    const double memcached =
        (t >= kMemcachedArriveS && t < kMemcachedLeaveS) ? 1.0 : 0.0;
    const double spark = base_rate > 0.0 ? bins[bin] / base_rate : 0.0;
    bench::PrintCell(t / 60.0);
    bench::PrintCell(spark);
    bench::PrintCell(memcached);
    bench::PrintCell(spark + memcached);
    bench::EndRow();
  }
  return 0;
}
