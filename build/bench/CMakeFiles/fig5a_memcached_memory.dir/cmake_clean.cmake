file(REMOVE_RECURSE
  "CMakeFiles/fig5a_memcached_memory.dir/fig5a_memcached_memory.cc.o"
  "CMakeFiles/fig5a_memcached_memory.dir/fig5a_memcached_memory.cc.o.d"
  "fig5a_memcached_memory"
  "fig5a_memcached_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_memcached_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
