#include "src/common/sim_options.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

namespace defl {
namespace {

Result<std::vector<std::string>> ParseArgs(SimOptionsParser& options,
                                           std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return options.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(SimOptionsTest, SharedFlagsParseIntoCommon) {
  SimOptionsParser options("a test tool");
  ASSERT_TRUE(ParseArgs(options, {"--metrics-out=m.json", "--trace-out=t.jsonl",
                                  "--fault-plan=f.plan"})
                  .ok());
  EXPECT_EQ(options.common().metrics_out, "m.json");
  EXPECT_EQ(options.common().trace_out, "t.jsonl");
  EXPECT_EQ(options.common().fault_plan, "f.plan");
}

TEST(SimOptionsTest, ToolSpecificFlagsRegisterAlongside) {
  SimOptionsParser options("a test tool");
  int64_t workers = 4;
  options.flags().AddInt("workers", "worker count", &workers);
  ASSERT_TRUE(ParseArgs(options, {"--workers=9", "--metrics-out=m.json"}).ok());
  EXPECT_EQ(workers, 9);
  EXPECT_EQ(options.common().metrics_out, "m.json");
}

TEST(SimOptionsTest, SharedFlagsAppearFirstInHelp) {
  SimOptionsParser options("my program banner");
  int64_t workers = 4;
  options.flags().AddInt("workers", "worker count", &workers);
  const auto result = ParseArgs(options, {"--help"});
  ASSERT_FALSE(result.ok());
  const std::string& usage = result.error();
  EXPECT_NE(usage.find("my program banner"), std::string::npos);
  const size_t metrics_pos = usage.find("--metrics-out");
  const size_t workers_pos = usage.find("--workers");
  ASSERT_NE(metrics_pos, std::string::npos);
  ASSERT_NE(workers_pos, std::string::npos);
  EXPECT_LT(metrics_pos, workers_pos);
}

TEST(SimOptionsTest, InheritsParserStrictness) {
  SimOptionsParser options("a test tool");
  // Duplicates and near-miss names fail the same way plain FlagParser does.
  EXPECT_FALSE(
      ParseArgs(options, {"--metrics-out=a.json", "--metrics-out=b.json"}).ok());
  const auto result = ParseArgs(options, {"--metrics-uot=a.json"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("did you mean --metrics-out?"), std::string::npos)
      << result.error();
}

TEST(SimOptionsTest, RejectFlagCombinationWording) {
  const Result<bool> both = RejectFlagCombination(
      "trace-file", true, "save-trace", true, "nothing new to save");
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.error(),
            "--trace-file and --save-trace cannot be combined "
            "(nothing new to save)");
  EXPECT_TRUE(RejectFlagCombination("a", true, "b", false, "r").ok());
  EXPECT_TRUE(RejectFlagCombination("a", false, "b", true, "r").ok());
  EXPECT_TRUE(RejectFlagCombination("a", false, "b", false, "r").ok());
}

}  // namespace
}  // namespace defl
