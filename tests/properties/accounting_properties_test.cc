// Property test for the cached per-server resource accounting (DESIGN.md
// §9): after ANY sequence of cluster operations -- launches (which deflate
// or preempt under pressure), completions, explicit deflations,
// reinflations, crashes, recoveries -- the cached aggregates a server serves
// from Allocated()/Free()/Deflatable()/Preemptible() must be EXACTLY equal
// (bitwise, not approximately) to a recompute-from-scratch over its hosted
// VMs, and the VmId -> server index must agree with the servers' actual
// contents. Seeded from DEFL_FAULT_SEED so CI can run a seed matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_manager.h"

namespace defl {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

std::unique_ptr<Vm> RandomVm(VmId id, Rng& rng) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(static_cast<double>(rng.UniformInt(1, 12)),
                             static_cast<double>(rng.UniformInt(1, 12)) * 4096.0);
  spec.priority = rng.Uniform(0.0, 1.0) < 0.6 ? VmPriority::kLow : VmPriority::kHigh;
  spec.min_size = spec.size * rng.Uniform(0.0, 0.6);
  return std::make_unique<Vm>(id, spec);
}

// The cached aggregates, read through the public accessors (which serve from
// the cache), must match a recompute over the hosted VMs exactly. Comparing
// through the accessors first and RecomputeAccounting() second means a
// mutation that forgot to dirty the cache shows up as a mismatch here.
void ExpectAccountingExact(ClusterManager& manager) {
  for (Server* server : manager.servers()) {
    const ResourceVector allocated = server->Allocated();
    const ResourceVector deflatable = server->Deflatable();
    const ResourceVector preemptible = server->Preemptible();
    const ServerAccounting fresh = server->RecomputeAccounting();
    EXPECT_TRUE(allocated == fresh.allocated) << "server " << server->id();
    EXPECT_TRUE(deflatable == fresh.deflatable) << "server " << server->id();
    EXPECT_TRUE(preemptible == fresh.preemptible) << "server " << server->id();
    EXPECT_TRUE(server->AccountingConsistent()) << "server " << server->id();
  }
}

// Every hosted VM resolves through the index to its actual server, and the
// index holds nothing else.
void ExpectIndexCoherent(ClusterManager& manager) {
  size_t hosted = 0;
  for (Server* server : manager.servers()) {
    for (const auto& vm : server->vms()) {
      ++hosted;
      ASSERT_EQ(manager.ServerOf(vm->id()), server) << "vm " << vm->id();
      ASSERT_EQ(manager.FindVm(vm->id()), vm.get()) << "vm " << vm->id();
    }
  }
  // Completing an unknown id must be a no-op; sample a few ids well past the
  // launched range to probe for stale entries.
  const int64_t completed_before = manager.counters().completed;
  manager.CompleteVm(1 << 28);
  EXPECT_EQ(manager.counters().completed, completed_before);
  (void)hosted;
}

class AccountingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AccountingPropertyTest, RandomOpSequenceKeepsCacheExact) {
  const uint64_t seed = TestSeed() + static_cast<uint64_t>(GetParam()) * 1009;
  Rng rng(seed);
  ClusterConfig config;
  config.strategy = GetParam() % 2 == 0 ? ReclamationStrategy::kDeflation
                                        : ReclamationStrategy::kPreemptionOnly;
  config.controller.mode = GetParam() % 3 == 0 ? DeflationMode::kVmLevel
                                               : DeflationMode::kCascade;
  config.placement = static_cast<PlacementPolicy>(GetParam() % 3);
  const int num_servers = 4;
  ClusterManager manager(num_servers, ResourceVector(16.0, 65536.0), config);

  std::vector<VmId> live;
  VmId next_id = 1;
  for (int op = 0; op < 400; ++op) {
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 45) {  // launch (may cascade-deflate or preempt under load)
      const VmId id = next_id++;
      if (manager.LaunchVm(RandomVm(id, rng)).ok()) {
        live.push_back(id);
      }
    } else if (roll < 60 && !live.empty()) {  // complete
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      manager.CompleteVm(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 72 && !live.empty()) {  // explicit deflate
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      Server* server = manager.ServerOf(live[pick]);
      if (server != nullptr) {
        Vm* vm = server->FindVm(live[pick]);
        manager.controller(server->id())
            ->DeflateVm(live[pick], vm->deflatable_amount() * rng.Uniform(0.0, 1.0));
      }
    } else if (roll < 80) {  // reinflate one server
      const ServerId target = rng.UniformInt(0, num_servers - 1);
      if (manager.health(target) != ServerHealth::kDown) {
        manager.controller(target)->ReinflateAll();
      }
    } else if (roll < 88) {  // crash (evacuates, re-places, revokes)
      manager.CrashServer(rng.UniformInt(0, num_servers - 1));
    } else if (roll < 96) {  // recover + promote
      const ServerId target = rng.UniformInt(0, num_servers - 1);
      manager.RecoverServer(target);
      manager.MarkHealthy(target);
    } else {  // degrade
      manager.DegradeServer(rng.UniformInt(0, num_servers - 1));
    }
    // Preemptions and crash revocations retire VMs behind our back.
    std::unordered_set<VmId> gone;
    for (const VmId id : manager.TakePreempted()) {
      gone.insert(id);
    }
    if (!gone.empty()) {
      std::erase_if(live, [&gone](VmId id) { return gone.count(id) > 0; });
    }
    std::erase_if(live, [&manager](VmId id) { return manager.FindVm(id) == nullptr; });

    ExpectAccountingExact(manager);
    if (op % 25 == 0 || op == 399) {
      ExpectIndexCoherent(manager);
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "accounting drifted at op " << op << " (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AccountingPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace defl
