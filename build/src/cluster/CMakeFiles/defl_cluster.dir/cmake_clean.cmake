file(REMOVE_RECURSE
  "CMakeFiles/defl_cluster.dir/cluster_manager.cc.o"
  "CMakeFiles/defl_cluster.dir/cluster_manager.cc.o.d"
  "CMakeFiles/defl_cluster.dir/cluster_sim.cc.o"
  "CMakeFiles/defl_cluster.dir/cluster_sim.cc.o.d"
  "CMakeFiles/defl_cluster.dir/placement.cc.o"
  "CMakeFiles/defl_cluster.dir/placement.cc.o.d"
  "CMakeFiles/defl_cluster.dir/pricing.cc.o"
  "CMakeFiles/defl_cluster.dir/pricing.cc.o.d"
  "CMakeFiles/defl_cluster.dir/trace.cc.o"
  "CMakeFiles/defl_cluster.dir/trace.cc.o.d"
  "CMakeFiles/defl_cluster.dir/trace_io.cc.o"
  "CMakeFiles/defl_cluster.dir/trace_io.cc.o.d"
  "libdefl_cluster.a"
  "libdefl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
