#!/bin/sh
# Smoke test for the durability layer: run a scenario uninterrupted, then run
# the same scenario under chaos_runner (seeded SIGKILLs + recovery) and assert
# the exported metrics and event trace are byte-identical (DESIGN.md §13).
#
# Usage: chaos_recovery_smoke.sh <deflation_sim> <chaos_runner> <work_dir>
set -eu

SIM="$1"
RUNNER="$2"
DIR="$3"

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR"

"$SIM" --servers=10 --duration-h=3 --load=1.5 \
  --metrics-out=ref.json --trace-out=ref.jsonl > /dev/null

"$RUNNER" --seed=5 --kills=3 --min-delay-ms=10 --max-delay-ms=200 \
  --compare=out.json=ref.json,out.jsonl=ref.jsonl -- \
  "$SIM" --servers=10 --duration-h=3 --load=1.5 \
    --durable-dir=run.d --checkpoint-every-h=0.25 --checkpoint-min-wall-s=0 \
    --metrics-out=out.json --trace-out=out.jsonl
