file(REMOVE_RECURSE
  "CMakeFiles/defl_hypervisor.dir/guest_os.cc.o"
  "CMakeFiles/defl_hypervisor.dir/guest_os.cc.o.d"
  "CMakeFiles/defl_hypervisor.dir/latency.cc.o"
  "CMakeFiles/defl_hypervisor.dir/latency.cc.o.d"
  "CMakeFiles/defl_hypervisor.dir/overcommit.cc.o"
  "CMakeFiles/defl_hypervisor.dir/overcommit.cc.o.d"
  "CMakeFiles/defl_hypervisor.dir/server.cc.o"
  "CMakeFiles/defl_hypervisor.dir/server.cc.o.d"
  "CMakeFiles/defl_hypervisor.dir/vm.cc.o"
  "CMakeFiles/defl_hypervisor.dir/vm.cc.o.d"
  "libdefl_hypervisor.a"
  "libdefl_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defl_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
