# Empty dependencies file for defl_core.
# This may be replaced when dependencies are built.
