// Minimal leveled logging for the library and harnesses. Logging is off by
// default at kDebug and writes to stderr so bench stdout stays machine-
// readable. Not thread-safe by design: the simulator is single-threaded.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace defl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line "[LEVEL] message" to stderr if level passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

// Stream-style collector used by the DEFL_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the LogLine expression in the enabled branch of DEFL_LOG so both
// ternary arms have type void. operator& binds looser than operator<<, so it
// consumes the fully streamed line.
struct LogVoidifier {
  void operator&(const LogLine&) {}
};

}  // namespace internal
}  // namespace defl

// A suppressed line costs one level comparison: the ternary short-circuits
// before the LogLine (and its ostringstream, and every streamed operand) is
// ever constructed.
#define DEFL_LOG(level)                                      \
  (::defl::LogLevel::level < ::defl::GetLogLevel())          \
      ? (void)0                                              \
      : ::defl::internal::LogVoidifier() &                   \
            ::defl::internal::LogLine(::defl::LogLevel::level)

#endif  // SRC_COMMON_LOGGING_H_
