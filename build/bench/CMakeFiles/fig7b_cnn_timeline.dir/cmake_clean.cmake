file(REMOVE_RECURSE
  "CMakeFiles/fig7b_cnn_timeline.dir/fig7b_cnn_timeline.cc.o"
  "CMakeFiles/fig7b_cnn_timeline.dir/fig7b_cnn_timeline.cc.o.d"
  "fig7b_cnn_timeline"
  "fig7b_cnn_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_cnn_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
