#include "src/hypervisor/server.h"

#include <gtest/gtest.h>

#include <memory>

namespace defl {
namespace {

std::unique_ptr<Vm> MakeVm(VmId id, double cpus, double mem_mb,
                           VmPriority priority = VmPriority::kLow,
                           ResourceVector min_size = ResourceVector()) {
  VmSpec spec;
  spec.name = "vm" + std::to_string(id);
  spec.size = ResourceVector(cpus, mem_mb);
  spec.priority = priority;
  spec.min_size = min_size;
  return std::make_unique<Vm>(id, spec);
}

TEST(ServerTest, EmptyServerIsFree) {
  Server server(1, ResourceVector(32.0, 262144.0));
  EXPECT_EQ(server.Free(), server.capacity());
  EXPECT_TRUE(server.Deflatable().IsZero());
  EXPECT_DOUBLE_EQ(server.Utilization(), 0.0);
  EXPECT_DOUBLE_EQ(server.NominalOvercommitment(), 0.0);
}

TEST(ServerTest, AddRemoveVmUpdatesAccounting) {
  Server server(1, ResourceVector(32.0, 262144.0));
  Vm* vm = server.AddVm(MakeVm(7, 8.0, 65536.0));
  EXPECT_EQ(vm->state(), VmState::kRunning);
  EXPECT_EQ(server.Allocated(), ResourceVector(8.0, 65536.0));
  EXPECT_EQ(server.Free(), ResourceVector(24.0, 196608.0));
  auto removed = server.RemoveVm(7);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id(), 7);
  EXPECT_EQ(server.Free(), server.capacity());
}

TEST(ServerTest, RemoveMissingVmReturnsNull) {
  Server server(1, ResourceVector(32.0, 262144.0));
  EXPECT_EQ(server.RemoveVm(99), nullptr);
  EXPECT_EQ(server.FindVm(99), nullptr);
}

TEST(ServerTest, DeflatableSumsLowPriorityHeadroom) {
  Server server(1, ResourceVector(32.0, 262144.0));
  server.AddVm(MakeVm(1, 8.0, 65536.0, VmPriority::kLow, ResourceVector(2.0, 16384.0)));
  server.AddVm(MakeVm(2, 8.0, 65536.0, VmPriority::kHigh));
  EXPECT_EQ(server.Deflatable(), ResourceVector(6.0, 49152.0));
  EXPECT_EQ(server.Availability(), server.Free() + ResourceVector(6.0, 49152.0));
}

TEST(ServerTest, DeflationFreesCapacity) {
  Server server(1, ResourceVector(16.0, 131072.0));
  Vm* vm = server.AddVm(MakeVm(1, 8.0, 65536.0));
  vm->HvReclaim(ResourceVector(4.0, 32768.0));
  EXPECT_EQ(server.Allocated(), ResourceVector(4.0, 32768.0));
  EXPECT_EQ(server.Free(), ResourceVector(12.0, 98304.0));
}

TEST(ServerTest, NominalOvercommitmentUsesSpecSizes) {
  Server server(1, ResourceVector(16.0, 131072.0));
  Vm* a = server.AddVm(MakeVm(1, 8.0, 65536.0));
  server.AddVm(MakeVm(2, 16.0, 65536.0));
  // Nominal CPU 24/16 = 1.5 even though VM 1 is deflated.
  a->HvReclaim(ResourceVector(8.0, 0.0));
  EXPECT_DOUBLE_EQ(server.NominalOvercommitment(), 1.5);
}

TEST(ServerTest, UtilizationIsDominantDimension) {
  Server server(1, ResourceVector(16.0, 100000.0));
  server.AddVm(MakeVm(1, 4.0, 80000.0));
  EXPECT_DOUBLE_EQ(server.Utilization(), 0.8);  // memory dominates
}

TEST(ServerTest, CanFitWithDeflation) {
  Server server(1, ResourceVector(16.0, 131072.0));
  server.AddVm(MakeVm(1, 16.0, 131072.0));  // fills the server
  EXPECT_TRUE(server.CanFitWithDeflation(ResourceVector(8.0, 65536.0)));
  Server rigid(2, ResourceVector(16.0, 131072.0));
  rigid.AddVm(MakeVm(2, 16.0, 131072.0, VmPriority::kHigh));
  EXPECT_FALSE(rigid.CanFitWithDeflation(ResourceVector(8.0, 65536.0)));
}

TEST(ServerTest, VmCountTracksHostedVms) {
  Server server(1, ResourceVector(32.0, 262144.0));
  EXPECT_EQ(server.vm_count(), 0u);
  server.AddVm(MakeVm(1, 2.0, 8192.0));
  server.AddVm(MakeVm(2, 2.0, 8192.0));
  EXPECT_EQ(server.vm_count(), 2u);
  server.RemoveVm(1);
  EXPECT_EQ(server.vm_count(), 1u);
  EXPECT_NE(server.FindVm(2), nullptr);
}

}  // namespace
}  // namespace defl
