#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>
#include <vector>

#include "src/common/rng.h"

namespace defl {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5.0, [&] { order.push_back(2); });
  sim.At(1.0, [&] { order.push_back(1); });
  sim.At(9.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(SimulatorTest, SameTimeRunsInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.At(10.0, [&] { sim.After(5.0, [&] { fired_at = sim.now(); }); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.At(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RunUntilStopsClock) {
  Simulator sim;
  int count = 0;
  sim.At(1.0, [&] { ++count; });
  sim.At(100.0, [&] { ++count; });
  sim.Run(50.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
  sim.Run();
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.Run(25.0);
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
}

TEST(SimulatorTest, EveryFiresPeriodically) {
  Simulator sim;
  std::vector<double> fires;
  EventHandle h = sim.Every(2.0, [&] { fires.push_back(sim.now()); });
  sim.Run(9.0);
  EXPECT_EQ(fires, (std::vector<double>{2.0, 4.0, 6.0, 8.0}));
  h.Cancel();
  sim.Run(20.0);
  EXPECT_EQ(fires.size(), 4u);
}

TEST(SimulatorTest, EveryCancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.Every(1.0, [&] {
    if (++count == 3) {
      h.Cancel();
    }
  });
  sim.Run(100.0);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EveryCancelOnFirstFiringNeverRefires) {
  // Regression: cancelling a periodic event from inside its very first
  // callback must prevent the self-reschedule -- the callback must not run a
  // second time even though the next tick may already be queued.
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.Every(1.0, [&] {
    ++count;
    h.Cancel();
  });
  sim.Run(100.0);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(h.pending());
}

TEST(SimulatorTest, EveryCancelledBySameTimeSiblingDoesNotFire) {
  // A sibling event at the same timestamp, scheduled before the periodic
  // event, cancels it; the tick pops later in the same instant and must be
  // skipped.
  Simulator sim;
  int count = 0;
  EventHandle h;
  sim.At(1.0, [&] { h.Cancel(); });
  h = sim.Every(1.0, [&] { ++count; });
  sim.Run(10.0);
  EXPECT_EQ(count, 0);

  // And the mirror case: the tick fires first, then the sibling cancels the
  // already-queued next tick.
  Simulator sim2;
  int count2 = 0;
  EventHandle h2 = sim2.Every(1.0, [&] { ++count2; });
  sim2.At(1.0, [&] { h2.Cancel(); });
  sim2.Run(10.0);
  EXPECT_EQ(count2, 1);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.At(0.0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, StressOrderingUnderHeavyLoad) {
  // 100k events in random submission order with interleaved cancellations:
  // execution must be globally time-ordered and skip every cancelled event.
  Simulator sim;
  Rng rng(99);
  std::vector<double> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100000; ++i) {
    const double when = rng.Uniform(0.0, 1e6);
    handles.push_back(sim.At(when, [&fired, when] { fired.push_back(when); }));
  }
  int cancelled = 0;
  for (size_t i = 0; i < handles.size(); i += 7) {
    handles[i].Cancel();
    ++cancelled;
  }
  sim.Run();
  EXPECT_EQ(fired.size(), handles.size() - static_cast<size_t>(cancelled));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.events_executed(), static_cast<int64_t>(fired.size()));
}

TEST(SimulatorTest, ManyPeriodicTasksCoexist) {
  Simulator sim;
  std::vector<int> counts(50, 0);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(sim.Every(1.0 + i * 0.1, [&counts, i] { ++counts[i]; }));
  }
  sim.Run(100.0);
  for (int i = 0; i < 50; ++i) {
    const int expected = static_cast<int>(100.0 / (1.0 + i * 0.1));
    EXPECT_NEAR(counts[i], expected, 1) << "timer " << i;
  }
}

TEST(SimulatorTest, PendingIsFalseAfterEventRuns) {
  // The handle contract says pending() is false once the event ran; the
  // generation-counted slots implement that exactly (the pre-arena
  // shared_ptr<bool> implementation reported a stale `true` here).
  Simulator sim;
  EventHandle h = sim.At(1.0, [] {});
  EXPECT_TRUE(h.pending());
  sim.Run();
  EXPECT_FALSE(h.pending());
}

TEST(SimulatorTest, StaleHandleCannotCancelRecycledSlot) {
  // ABA guard: after an event runs, its slot is recycled for later events.
  // A stale handle to the old event must be a no-op, never a cancellation of
  // whatever reused the slot.
  Simulator sim;
  bool second_ran = false;
  EventHandle h1 = sim.At(1.0, [] {});
  sim.Run();
  EventHandle h2 = sim.At(2.0, [&] { second_ran = true; });
  h1.Cancel();
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  sim.Run();
  EXPECT_TRUE(second_ran);
}

TEST(SimulatorTest, HandleOutlivesSimulator) {
  // Handles co-own the slot pool: querying or cancelling after the Simulator
  // is gone must be safe.
  EventHandle h;
  {
    Simulator sim;
    h = sim.At(1.0, [] {});
  }
  EXPECT_TRUE(h.pending());  // never ran: the sim died with it queued
  h.Cancel();
  EXPECT_FALSE(h.pending());
}

TEST(SimulatorTest, LargeCaptureFallsBackToHeapCorrectly) {
  // Captures beyond the small-buffer budget take the heap fallback; the
  // callback must still move in and run intact.
  Simulator sim;
  std::array<double, 64> payload;  // 512 bytes, > InlineCallback::kInlineBytes
  std::iota(payload.begin(), payload.end(), 1.0);
  double sum = 0.0;
  sim.At(1.0, [payload, &sum] {
    for (const double v : payload) {
      sum += v;
    }
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(sum, 64.0 * 65.0 / 2.0);
}

TEST(SimulatorTest, EveryFiresOnExactPeriodGridWithoutDrift) {
  // The k-th firing is first + k * period computed from a fire counter. With
  // a period that is not exactly representable (0.1), the old accumulated
  // `when += period` walks off the grid; the closed form cannot.
  Simulator sim;
  std::vector<double> fires;
  sim.Every(0.1, [&] { fires.push_back(sim.now()); });
  sim.Run(100.0);
  ASSERT_GE(fires.size(), 990u);
  for (size_t k = 0; k < fires.size(); ++k) {
    const double expected = 0.1 + static_cast<double>(k) * 0.1;
    EXPECT_EQ(fires[k], expected) << "firing " << k;  // bitwise, not NEAR
  }
  // Document why the closed form matters: accumulation drifts within a
  // thousand firings of a non-dyadic period.
  double accumulated = 0.1;
  for (size_t k = 1; k < 1000; ++k) {
    accumulated += 0.1;
  }
  EXPECT_NE(accumulated, 0.1 + 999.0 * 0.1);
}

using SimulatorDeathTest = ::testing::Test;

TEST(SimulatorDeathTest, AtInThePastAbortsInReleaseBuildsToo) {
  // Past-scheduling is rejected with a loud abort (not just an assert), so a
  // release binary cannot silently enqueue misordered events.
  Simulator sim;
  sim.At(10.0, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(5.0, [] {}), "event time before now");
}

TEST(SimulatorDeathTest, AtRejectsNaN) {
  Simulator sim;
  EXPECT_DEATH(sim.At(std::numeric_limits<double>::quiet_NaN(), [] {}),
               "event time before now");
}

TEST(SimulatorDeathTest, AfterNegativeDelayAborts) {
  Simulator sim;
  EXPECT_DEATH(sim.After(-1.0, [] {}), "negative delay");
}

TEST(SimulatorDeathTest, EveryNonPositivePeriodAborts) {
  Simulator sim;
  EXPECT_DEATH(sim.Every(0.0, [] {}), "non-positive period");
  EXPECT_DEATH(sim.Every(-2.0, [] {}), "non-positive period");
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.After(1.0, chain);
    }
  };
  sim.After(1.0, chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.events_executed(), 5);
}

}  // namespace
}  // namespace defl
