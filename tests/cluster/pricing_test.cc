#include "src/cluster/pricing.h"

#include <gtest/gtest.h>

namespace defl {
namespace {

UsageSummary BaseUsage() {
  UsageSummary usage;
  usage.low_pri_vm_hours = 1000.0;
  usage.low_pri_nominal_cpu_hours = 4000.0;
  usage.low_pri_effective_cpu_hours = 3400.0;  // ~15% deflated on average
  usage.high_pri_cpu_hours = 2000.0;
  usage.preemptions = 0;
  return usage;
}

TEST(PricingTest, FlatBillsNominalRegardlessOfDeflation) {
  const PricingModel model;
  const RevenueReport r = PriceDeflatableFlat(BaseUsage(), model);
  const double rate = model.on_demand_cpu_hour * (1.0 - model.deflatable_discount);
  EXPECT_DOUBLE_EQ(r.customer_cost, 4000.0 * rate);
  EXPECT_DOUBLE_EQ(r.provider_revenue, r.customer_cost);
  EXPECT_DOUBLE_EQ(r.customer_loss, 0.0);
}

TEST(PricingTest, RaaSBillsOnlyAllocatedResources) {
  const PricingModel model;
  const RevenueReport flat = PriceDeflatableFlat(BaseUsage(), model);
  const RevenueReport raas = PriceDeflatableRaaS(BaseUsage(), model);
  EXPECT_LT(raas.customer_cost, flat.customer_cost);
  // Effective $/CPU-hour is the discounted rate exactly under RaaS.
  EXPECT_NEAR(raas.effective_cost_per_cpu_hour,
              model.on_demand_cpu_hour * (1.0 - model.deflatable_discount), 1e-12);
}

TEST(PricingTest, PreemptionsRaiseEffectiveCost) {
  const PricingModel model;
  UsageSummary disrupted = BaseUsage();
  disrupted.preemptions = 200;
  const RevenueReport calm = PricePreemptible(BaseUsage(), model);
  const RevenueReport rough = PricePreemptible(disrupted, model);
  EXPECT_GT(rough.customer_loss, 0.0);
  EXPECT_GT(rough.effective_cost_per_cpu_hour, calm.effective_cost_per_cpu_hour);
}

TEST(PricingTest, DeflatableCanBeatPreemptibleDespiteSmallerDiscount) {
  // The §8 argument: deflatable VMs are priced higher than spot, but when
  // spot preemptions destroy enough work, the deflatable customer's
  // effective $/useful-CPU-hour is lower.
  const PricingModel model;
  UsageSummary deflatable_usage = BaseUsage();  // deflated, never preempted
  UsageSummary spot_usage = BaseUsage();
  spot_usage.low_pri_effective_cpu_hours = spot_usage.low_pri_nominal_cpu_hours;
  spot_usage.preemptions = 400;  // heavy revocation regime

  const RevenueReport deflatable = PriceDeflatableRaaS(deflatable_usage, model);
  const RevenueReport spot = PricePreemptible(spot_usage, model);
  EXPECT_LT(deflatable.effective_cost_per_cpu_hour, spot.effective_cost_per_cpu_hour);
}

TEST(PricingTest, ZeroUsageYieldsZeroes) {
  const RevenueReport r = PriceDeflatableRaaS(UsageSummary{}, PricingModel{});
  EXPECT_DOUBLE_EQ(r.provider_revenue, 0.0);
  EXPECT_DOUBLE_EQ(r.effective_cost_per_cpu_hour, 0.0);
}

}  // namespace
}  // namespace defl
