# policy must be slo or uniform
slo p99=80 policy=fastest hours=2
