file(REMOVE_RECURSE
  "libdefl_sim.a"
)
