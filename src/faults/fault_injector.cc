#include "src/faults/fault_injector.h"

#include <algorithm>

namespace defl {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  rule_fires_.assign(plan_.rules.size(), 0);
}

void FaultInjector::AttachTelemetry(TelemetryContext* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  MetricsRegistry& registry = telemetry_->metrics();
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const FaultKind kind = static_cast<FaultKind>(i);
    metrics_[static_cast<size_t>(i)] =
        registry.Counter(std::string("faults/injected/") + FaultKindName(kind));
  }
}

double FaultInjector::SiteUniform(FaultKind kind, int64_t vm, int64_t server,
                                  uint64_t n, uint64_t salt) const {
  uint64_t x = plan_.seed;
  x = SplitMix64(x ^ (static_cast<uint64_t>(kind) + 1));
  x = SplitMix64(x ^ static_cast<uint64_t>(vm));
  x = SplitMix64(x ^ static_cast<uint64_t>(server));
  x = SplitMix64(x ^ n);
  x = SplitMix64(x ^ salt);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

FaultDecision FaultInjector::Sample(FaultKind kind, int64_t vm, int64_t server) {
  FaultDecision decision;
  if (plan_.rules.empty()) {
    return decision;
  }
  const double now = Now();
  for (size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.kind != kind || IsServerEventKind(rule.kind)) {
      continue;
    }
    if (rule.vm >= 0 && rule.vm != vm) {
      continue;
    }
    if (rule.server >= 0 && rule.server != server) {
      continue;
    }
    if (now < rule.start_s || now > rule.end_s) {
      continue;
    }
    if (rule.max_count >= 0 && rule_fires_[r] >= rule.max_count) {
      continue;
    }
    const uint64_t n = site_draws_[{static_cast<uint8_t>(kind), vm, server}]++;
    if (SiteUniform(kind, vm, server, n, 0) >= rule.probability) {
      return decision;  // the matched rule's trial failed: no fault here
    }
    ++rule_fires_[r];
    ++injected_[static_cast<size_t>(kind)];
    decision.fired = true;
    decision.magnitude = rule.magnitude;
    decision.roll = SiteUniform(kind, vm, server, n, 1);
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Add(metrics_[static_cast<size_t>(kind)]);
      // target packs (magnitude, roll) so the trace alone reconstructs the
      // injected severity; outcome carries the fault kind.
      telemetry_->trace().Record(TraceEventKind::kFaultInjected, CascadeLayer::kNone,
                                 vm, server,
                                 ResourceVector(decision.magnitude, decision.roll),
                                 ResourceVector::Zero(), static_cast<int32_t>(kind));
    }
    return decision;
  }
  return decision;
}

FaultInjector::State FaultInjector::ExportState() const {
  State state;
  state.site_draws.reserve(site_draws_.size());
  for (const auto& [site, draws] : site_draws_) {
    state.site_draws.emplace_back(std::get<0>(site), std::get<1>(site),
                                  std::get<2>(site), draws);
  }
  state.rule_fires = rule_fires_;
  state.injected = injected_;
  return state;
}

Result<bool> FaultInjector::ImportState(const State& state) {
  if (state.rule_fires.size() != plan_.rules.size()) {
    return Error{"fault injector state mismatch: snapshot has " +
                 std::to_string(state.rule_fires.size()) +
                 " rule counters, the plan has " +
                 std::to_string(plan_.rules.size()) + " rules"};
  }
  site_draws_.clear();
  for (const auto& [kind, vm, server, draws] : state.site_draws) {
    site_draws_[{kind, vm, server}] = draws;
  }
  rule_fires_ = state.rule_fires;
  injected_ = state.injected;
  return true;
}

int64_t FaultInjector::total_injected() const {
  int64_t total = 0;
  for (const int64_t n : injected_) {
    total += n;
  }
  return total;
}

std::vector<FaultInjector::ServerEvent> FaultInjector::ServerEventsFor(
    int num_servers) const {
  std::vector<ServerEvent> events;
  for (const FaultRule& rule : plan_.rules) {
    if (!IsServerEventKind(rule.kind)) {
      continue;
    }
    if (rule.server >= 0) {
      events.push_back(ServerEvent{rule.start_s, rule.kind, rule.server});
    } else {
      for (int s = 0; s < num_servers; ++s) {
        events.push_back(ServerEvent{rule.start_s, rule.kind, s});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ServerEvent& a, const ServerEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return events;
}

}  // namespace defl
