#include "src/sim/simulator.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace defl {

namespace internal {

void AbortInvalidSchedule(const char* what, double value, double now) {
  DEFL_LOG(kError) << what << " (value " << value << ", now " << now
                   << "): scheduling into the past or with a degenerate period"
                      " would corrupt deterministic event order";
  std::abort();
}

}  // namespace internal

bool Simulator::Step() {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    const QueueEntry entry = queue_.back();
    queue_.pop_back();
    internal::EventSlot& slot = slots_->slot(entry.slot);
    // A queue entry and its slot are released together, so a live entry's
    // generation always matches; the check guards against future misuse.
    assert(slot.generation == entry.generation);
    if (slot.cancelled) {
      slots_->Release(entry.slot);
      continue;
    }
    assert(entry.when >= now_);
    now_ = entry.when;
    ++events_executed_;
    slot.fn.Invoke();
    // The slot reference stays valid across Invoke: callbacks may schedule
    // new events (growing the pool's chunk list), but chunk storage never
    // moves. This slot cannot be recycled mid-flight -- release happens only
    // here, after its own entry was popped.
    if (slot.period > 0.0 && !slot.cancelled) {
      // Drift-free periodic re-arm: the k-th firing is first + k * period,
      // never an accumulated `when += period`.
      ++slot.fires;
      PushEntry(slot.first + static_cast<double>(slot.fires) * slot.period,
                entry.slot, entry.generation);
    } else {
      slots_->Release(entry.slot);
    }
    return true;
  }
  return false;
}

void Simulator::Run(SimTime until) {
  while (!queue_.empty()) {
    if (until != kNoLimit && queue_.front().when > until) {
      now_ = until;
      return;
    }
    Step();
  }
  if (until != kNoLimit && until > now_) {
    now_ = until;
  }
}

}  // namespace defl
