#include "src/cluster/fleet_view.h"

#include <algorithm>
#include <cassert>

namespace defl {

FleetView::~FleetView() {
  if (servers_ == nullptr) {
    return;
  }
  for (const auto& server : *servers_) {
    server->set_observer(nullptr);
  }
}

void FleetView::Bind(const std::vector<std::unique_ptr<Server>>& servers) {
  assert(servers_ == nullptr && "FleetView already bound");
  servers_ = &servers;
  count_ = servers.size();
  for (auto& col : free_) col.resize(count_);
  for (auto& col : deflatable_) col.resize(count_);
  for (auto& col : preemptible_) col.resize(count_);
  for (auto& col : nominal_) col.resize(count_);
  eligible_.assign(count_, 1);
  dirty_.assign(count_, 0);
  dirty_rows_.clear();
  dirty_rows_.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    assert(servers[i]->id() == static_cast<ServerId>(i) &&
           "FleetView requires dense server ids (id == row)");
    servers[i]->set_observer(this);
    MarkDirty(i);
  }
}

void FleetView::OnServerAllocationChanged(ServerId id) {
  MarkDirty(static_cast<size_t>(id));
}

void FleetView::MarkDirty(size_t row) {
  assert(row < count_);
  if (dirty_[row] == 0) {
    dirty_[row] = 1;
    dirty_rows_.push_back(static_cast<uint32_t>(row));
  }
}

void FleetView::MarkAllDirty() {
  for (size_t i = 0; i < count_; ++i) {
    MarkDirty(i);
  }
}

void FleetView::RefreshRow(size_t row) {
  // Read through the same public accessors the object-graph scan would
  // call: the mirrored bits are exactly the bits that scan would have seen
  // (and the read warms/validates the server's own accounting cache).
  const Server& server = *(*servers_)[row];
  const ResourceVector free = server.Free();
  const ResourceVector deflatable = server.Deflatable();
  const ResourceVector preemptible = server.Preemptible();
  const ResourceVector nominal = server.NominalDemand();
  for (const ResourceKind kind : kAllResources) {
    const auto k = static_cast<size_t>(kind);
    free_[k][row] = free[kind];
    deflatable_[k][row] = deflatable[kind];
    preemptible_[k][row] = preemptible[kind];
    nominal_[k][row] = nominal[kind];
  }
}

void FleetView::Refresh() {
  if (dirty_rows_.empty()) {
    return;
  }
  // Canonical ascending order regardless of mutation arrival order. When
  // most rows are dirty (initial bind, post-restore) a bitmap sweep beats
  // sorting a near-full permutation.
  if (dirty_rows_.size() >= count_ / 4 + 1) {
    for (size_t row = 0; row < count_; ++row) {
      if (dirty_[row] != 0) {
        RefreshRow(row);
        dirty_[row] = 0;
      }
    }
  } else {
    std::sort(dirty_rows_.begin(), dirty_rows_.end());
    for (const uint32_t row : dirty_rows_) {
      RefreshRow(row);
      dirty_[row] = 0;
    }
  }
  dirty_rows_.clear();
}

FleetEntry FleetView::Entry(size_t row) const {
  FleetEntry entry;
  for (const ResourceKind kind : kAllResources) {
    const auto k = static_cast<size_t>(kind);
    entry.free[kind] = free_[k][row];
    entry.deflatable[kind] = deflatable_[k][row];
    entry.preemptible[kind] = preemptible_[k][row];
    entry.nominal[kind] = nominal_[k][row];
  }
  entry.eligible = eligible_[row] != 0;
  return entry;
}

bool FleetView::RowConsistent(size_t row) const {
  const Server& server = *(*servers_)[row];
  const FleetEntry entry = Entry(row);
  return entry.free == server.Free() && entry.deflatable == server.Deflatable() &&
         entry.preemptible == server.Preemptible() &&
         entry.nominal == server.NominalDemand();
}

}  // namespace defl
