// GuardedAgent: the degradation shim between the local controller and a
// possibly-failing in-VM deflation agent. The paper treats the application
// layer as strictly best-effort -- whatever the agent does not deliver falls
// through to the OS and hypervisor layers -- but a real agent can also be
// slow, unresponsive, or short-delivering. The guard adds the missing RPC
// semantics:
//
//   * a per-request deadline: an attempt whose (injected) delay exceeds it
//     counts as a timeout;
//   * bounded exponential-backoff retries within one request;
//   * a per-VM circuit breaker: after `breaker_threshold` consecutive
//     timed-out attempts the agent is marked dead and every later request
//     falls straight through to the OS/hypervisor layers (returning zero)
//     until a kFootprintQuery probe succeeds, which closes the breaker.
//
// Timeouts originate from the FaultInjector (kAgentUnresponsive / kAgentSlow
// rules); with no injector attached the guard is a pass-through. All
// synthetic waiting (timeouts + backoff + slow replies) accumulates and is
// folded into the deflation outcome's latency by the local controller.
#ifndef SRC_CORE_AGENT_GUARD_H_
#define SRC_CORE_AGENT_GUARD_H_

#include "src/core/deflation_agent.h"
#include "src/core/protocol.h"
#include "src/faults/fault_injector.h"
#include "src/hypervisor/vm.h"
#include "src/telemetry/telemetry.h"

namespace defl {

struct AgentGuardConfig {
  // Per-attempt deadline for agent RPCs (s).
  double rpc_timeout_s = 5.0;
  // Attempts per request (1 = no retries).
  int max_attempts = 3;
  // Exponential backoff between attempts: base * 2^(attempt-1), capped.
  double backoff_base_s = 0.5;
  double backoff_cap_s = 8.0;
  // Consecutive timed-out attempts before the breaker opens.
  int breaker_threshold = 3;
};

class GuardedAgent : public DeflationAgent {
 public:
  GuardedAgent(VmId vm_id, DeflationAgent* inner, FaultInjector* faults,
               const AgentGuardConfig& config);

  void AttachTelemetry(TelemetryContext* telemetry);

  // DeflationAgent: SelfDeflate runs the retry/breaker state machine and
  // returns zero when the agent is (still) unreachable, so the cascade's
  // lower layers absorb the whole target. OnReinflate is fire-and-forget
  // (a lost notice is harmless). MemoryFootprintMb returns the last footprint
  // a successful call observed when the agent is unreachable -- reporting 0
  // for a dead agent would let unplug take memory the app still uses.
  ResourceVector SelfDeflate(const ResourceVector& target) override;
  void OnReinflate(const ResourceVector& added) override;
  double MemoryFootprintMb() const override;

  bool breaker_open() const { return breaker_open_; }
  int64_t timeouts() const { return timeouts_; }
  int64_t retries() const { return retries_; }
  int64_t breaker_trips() const { return breaker_trips_; }

  // Synthetic seconds spent waiting (timeouts, backoff, slow replies) since
  // the last call; the controller adds this to the cascade latency.
  double TakeInjectedDelay();

  DeflationAgent* inner() const { return inner_; }

 private:
  // One Bernoulli attempt against the injector; true = this attempt timed
  // out. Accumulates the attempt's synthetic delay.
  bool AttemptTimesOut();
  void NoteTimeout();  // consecutive-timeout counting + breaker trip
  // kFootprintQuery re-probe of an open breaker; closes it on success.
  bool ProbeAndMaybeClose();

  VmId vm_id_;
  DeflationAgent* inner_;
  FaultInjector* faults_;
  AgentGuardConfig config_;

  bool breaker_open_ = false;
  int consecutive_timeouts_ = 0;
  mutable double last_footprint_mb_ = 0.0;
  mutable double pending_delay_s_ = 0.0;
  int64_t timeouts_ = 0;
  int64_t retries_ = 0;
  int64_t breaker_trips_ = 0;

  TelemetryContext* telemetry_ = nullptr;
  struct {
    CounterHandle timeouts;
    CounterHandle retries;
    CounterHandle breaker_trips;
    CounterHandle breaker_resets;
    CounterHandle fall_throughs;
  } metrics_;
};

// Wraps a wire transport with injected transport faults: kWireDrop rules
// lose the response line entirely (the caller sees ""), kWireCorrupt rules
// mangle one byte (position picked by the decision roll). DecodeMessage
// rejects the mangled line in almost all cases and RemoteAgentProxy then
// treats the agent as silent -- the cascade falls through, never crashes.
WireTransport MakeFaultyTransport(WireTransport inner, FaultInjector* faults,
                                  VmId vm_id);

}  // namespace defl

#endif  // SRC_CORE_AGENT_GUARD_H_
