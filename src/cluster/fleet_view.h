// Structure-of-arrays mirror of the placement/accounting hot state
// (DESIGN.md §12). The object graph (Server -> Vm -> GuestOs) stays the
// source of truth; FleetView keeps flat parallel arrays of each server's
// free / deflatable / preemptible / nominal resource components plus a
// candidate-eligibility bit, so the placement scans can run as branch-light
// contiguous loops instead of pointer-chasing through per-server caches.
//
// Coherence protocol: FleetView installs itself as every server's
// ServerObserver, riding the same AllocationListener dirty-flag chain that
// invalidates the per-server accounting caches (GuestOs -> Vm -> Server).
// Any mutation that dirties a server's cache also marks that server's row
// here; Refresh() then re-reads the dirty rows from the object graph in
// ascending row order. Because each row is refreshed from the very accessors
// the object-graph scan would have called (Free/Deflatable/Preemptible/
// NominalDemand), the mirrored values are bit-identical to the object path,
// and every scan outcome (feasibility, fitness, tie-breaks) is too.
//
// Threading (DESIGN.md §10): mutations -- and therefore dirty-marking and
// Refresh() -- happen only on the coordinator thread. Parallel placement
// scans read only the flat arrays, never the Server objects, so shard
// workers touch no lazily-refreshing caches through this path.
//
// Snapshots never serialize a FleetView: it is derived state, rebuilt from
// the restored object graph (all rows start dirty), so the snapshot format
// stays independent of this layout.
#ifndef SRC_CLUSTER_FLEET_VIEW_H_
#define SRC_CLUSTER_FLEET_VIEW_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/hypervisor/server.h"
#include "src/resources/resource_vector.h"

namespace defl {

// One mirrored row materialized back into vectors, for tests and checks.
struct FleetEntry {
  ResourceVector free;
  ResourceVector deflatable;
  ResourceVector preemptible;
  ResourceVector nominal;
  bool eligible = false;
};

class FleetView : public ServerObserver {
 public:
  FleetView() = default;
  ~FleetView() override;

  // Self-registers as each server's observer; non-copyable, non-movable.
  FleetView(const FleetView&) = delete;
  FleetView& operator=(const FleetView&) = delete;

  // Binds to the server list and installs this view as every server's
  // change observer. Requires dense ids (servers[i]->id() == i): the id IS
  // the row index. Server addresses must stay stable for the lifetime of
  // the binding (they do: the list holds unique_ptrs). All rows start
  // dirty and eligible.
  void Bind(const std::vector<std::unique_ptr<Server>>& servers);

  size_t size() const { return count_; }
  bool bound() const { return servers_ != nullptr; }

  // ServerObserver: called on every allocation-affecting mutation of
  // server `id` (coordinator thread only); marks the row stale.
  void OnServerAllocationChanged(ServerId id) override;

  void MarkDirty(size_t row);
  void MarkAllDirty();
  bool HasDirty() const { return !dirty_rows_.empty(); }

  // Candidate eligibility (healthy servers accept placements). Maintained
  // by the cluster layer on health transitions, not by the observer chain.
  void SetEligible(size_t row, bool eligible) {
    eligible_[row] = eligible ? 1 : 0;
  }
  bool eligible(size_t row) const { return eligible_[row] != 0; }

  // Re-reads every dirty row from its Server in ascending row order, then
  // clears the dirty set. O(1) when nothing is dirty. Must run on the
  // coordinator thread before any scan consumes the columns.
  void Refresh();

  // Column base pointers for the flat placement scans (valid after Bind;
  // read-only, coherent after Refresh()).
  const double* free_col(ResourceKind k) const {
    return free_[static_cast<size_t>(k)].data();
  }
  const double* deflatable_col(ResourceKind k) const {
    return deflatable_[static_cast<size_t>(k)].data();
  }
  const double* preemptible_col(ResourceKind k) const {
    return preemptible_[static_cast<size_t>(k)].data();
  }
  const double* nominal_col(ResourceKind k) const {
    return nominal_[static_cast<size_t>(k)].data();
  }

  // Row materialized back into vectors (no refresh; callers wanting
  // coherent values call Refresh() first).
  FleetEntry Entry(size_t row) const;

  // True when row's mirrored values are exactly (bitwise) equal to the
  // server's accessors right now. Property tests call this after Refresh().
  bool RowConsistent(size_t row) const;

 private:
  void RefreshRow(size_t row);

  const std::vector<std::unique_ptr<Server>>* servers_ = nullptr;
  size_t count_ = 0;

  // Column-major: one contiguous array per (aggregate, resource kind).
  std::array<std::vector<double>, kNumResources> free_;
  std::array<std::vector<double>, kNumResources> deflatable_;
  std::array<std::vector<double>, kNumResources> preemptible_;
  std::array<std::vector<double>, kNumResources> nominal_;
  std::vector<uint8_t> eligible_;

  // Dirty tracking: a bitmap for O(1) dedup plus an insertion-order list of
  // dirty rows. Refresh() sorts the list (or sweeps the bitmap when most
  // rows are dirty) so rows always refresh in ascending canonical order.
  std::vector<uint8_t> dirty_;
  std::vector<uint32_t> dirty_rows_;
};

}  // namespace defl

#endif  // SRC_CLUSTER_FLEET_VIEW_H_
