// Property test for the what-if service's concurrency contract (DESIGN.md
// §15): a randomized batch of queries answered (a) serially and (b)
// concurrently at several worker counts against the same base snapshot must
// produce bitwise-identical per-query results, and the shared base blob
// must hash identically before and after -- queries are isolated
// copy-on-restore children and never write through the blob. Runs under
// the TSan CI matrix; query batches are seeded from DEFL_FAULT_SEED so each
// CI leg explores a different batch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/cluster/sim_session.h"
#include "src/common/rng.h"
#include "src/service/query.h"
#include "src/service/sweep.h"
#include "src/service/whatif.h"
#include "src/sim/snapshot_io.h"
#include "src/telemetry/telemetry.h"

namespace defl {
namespace {

uint64_t TestSeed() {
  const char* env = std::getenv("DEFL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

// A mid-run snapshot (half the horizon still ahead), so `run`/`hours=`
// queries genuinely simulate instead of hitting the horizon clamp.
std::string MidRunSnapshot() {
  ClusterSimConfig config;
  config.num_servers = 8;
  config.server_capacity = ResourceVector(16.0, 128.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 2.0 * 3600.0;
  config.trace.max_lifetime_s = 3600.0;
  config.trace.seed = TestSeed();
  config.trace =
      WithTargetLoad(config.trace, 1.5, config.num_servers, config.server_capacity);
  config.reinflate_period_s = 600.0;
  Result<SimSession> session = SimSession::Open(config);
  EXPECT_TRUE(session.ok()) << session.error();
  session.value().StepUntil(3600.0);
  return session.value().SnapshotBytes();
}

WhatIfQuery RandomQuery(Rng& rng) {
  WhatIfQuery query;
  switch (rng.UniformInt(0, 3)) {
    case 0:
      query.kind = QueryKind::kPlace;
      query.count = rng.UniformInt(1, 40);
      query.shape = ResourceVector(static_cast<double>(rng.UniformInt(1, 8)),
                                   static_cast<double>(rng.UniformInt(1, 16)) *
                                       1024.0);
      query.priority = rng.Chance(0.3) ? VmPriority::kHigh : VmPriority::kLow;
      query.hours = rng.Chance(0.5) ? rng.Uniform(0.1, 0.5) : 0.0;
      break;
    case 1:
      query.kind = QueryKind::kFail;
      query.fraction = rng.Uniform(0.0, 0.6);
      query.seed = rng.NextU64();
      query.hours = rng.Chance(0.5) ? rng.Uniform(0.1, 0.5) : 0.0;
      break;
    case 2:
      query.kind = QueryKind::kOvercommit;
      query.target = rng.Uniform(1.1, 1.9);
      query.shape = ResourceVector(2.0, 4096.0);
      query.limit = rng.UniformInt(10, 120);
      break;
    default:
      query.kind = QueryKind::kRun;
      query.hours = rng.Uniform(0.1, 1.0);
      break;
  }
  return query;
}

TEST(WhatIfDeterminismTest, ConcurrentBatchesMatchSerialBitwise) {
  Result<WhatIfService> loaded = WhatIfService::Load(MidRunSnapshot());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  const WhatIfService& service = loaded.value();
  const uint64_t blob_fnv_before = service.blob_fnv();

  Rng rng(TestSeed() ^ 0x817a71f5ULL);
  std::vector<WhatIfQuery> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(RandomQuery(rng));
  }

  const std::string serial = service.AnswerBatch(queries, 1);
  ASSERT_FALSE(serial.empty());
  for (const int workers : {2, 7}) {
    EXPECT_EQ(serial, service.AnswerBatch(queries, workers))
        << "workers=" << workers << " changed a query answer";
  }
  // The shared blob is read-only: no query may have written through it.
  EXPECT_EQ(blob_fnv_before,
            SnapshotFnv1a64(service.blob().data(), service.blob().size()));
}

TEST(WhatIfDeterminismTest, RepeatedConcurrentBatchesAreStable) {
  // Two concurrent runs of the same batch on one service instance: the
  // service holds no per-query mutable state, so the reports must match.
  Result<WhatIfService> loaded = WhatIfService::Load(MidRunSnapshot());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  Rng rng(TestSeed() ^ 0x5eedba7cULL);
  std::vector<WhatIfQuery> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(RandomQuery(rng));
  }
  const std::string first = loaded.value().AnswerBatch(queries, 7);
  EXPECT_EQ(first, loaded.value().AnswerBatch(queries, 7));
}

TEST(WhatIfDeterminismTest, AnswersDependOnlyOnBlobAndQuery) {
  // Two service instances over the same bytes answer identically: nothing
  // about an instance (load order, prior answers) leaks into a result.
  const std::string blob = MidRunSnapshot();
  Result<WhatIfService> a = WhatIfService::Load(blob);
  Result<WhatIfService> b = WhatIfService::Load(blob);
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng(TestSeed() ^ 0x0b10bULL);
  const WhatIfQuery query = RandomQuery(rng);
  // Warm instance `a` with a different query first.
  (void)a.value().Answer(RandomQuery(rng));
  Result<std::string> from_a = a.value().Answer(query);
  Result<std::string> from_b = b.value().Answer(query);
  ASSERT_TRUE(from_a.ok() && from_b.ok());
  EXPECT_EQ(from_a.value(), from_b.value());
}

TEST(WhatIfDeterminismTest, CorruptBlobIsRejectedAtLoad) {
  std::string blob = MidRunSnapshot();
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x40);
  Result<WhatIfService> loaded = WhatIfService::Load(std::move(blob));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("snapshot blob rejected"), std::string::npos)
      << loaded.error();
}

TEST(WhatIfDeterminismTest, PlacementOverrideChangesOnlyFuturePolicy) {
  Result<WhatIfService> loaded = WhatIfService::Load(MidRunSnapshot());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  TelemetryContext telemetry;
  Result<SimSession> child = loaded.value().RestoreChild(
      &telemetry, static_cast<int>(PlacementPolicy::kTwoChoices));
  ASSERT_TRUE(child.ok()) << child.error();
  EXPECT_EQ(child.value().config().cluster.placement,
            PlacementPolicy::kTwoChoices);

  TelemetryContext telemetry2;
  Result<SimSession> bad = loaded.value().RestoreChild(&telemetry2, 99);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("placement override"), std::string::npos)
      << bad.error();
}

TEST(WhatIfSweepTest, WorkerCountDoesNotChangeSweepReport) {
  Result<WhatIfService> loaded = WhatIfService::Load(MidRunSnapshot());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  SweepGrid grid;
  grid.policies = {PlacementPolicy::kBestFit, PlacementPolicy::kTwoChoices};
  grid.fail_fractions = {0.0, 0.25};
  grid.overcommit_targets = {1.4};
  grid.intensities = {0.5, 1.0};
  grid.hours = 0.5;
  grid.shape = ResourceVector(2.0, 4096.0);
  grid.limit = 60;
  SweepOrchestrator orchestrator(&loaded.value());
  Result<std::string> one = orchestrator.Run(grid, 1);
  ASSERT_TRUE(one.ok()) << one.error();
  for (const int workers : {2, 8}) {
    Result<std::string> many = orchestrator.Run(grid, workers);
    ASSERT_TRUE(many.ok()) << many.error();
    EXPECT_EQ(one.value(), many.value()) << "workers=" << workers;
  }
  // 2 policies x 2 fractions x 1 target x 2 intensities.
  EXPECT_NE(one.value().find("# sweep cells=8 "), std::string::npos)
      << one.value();
}

}  // namespace
}  // namespace defl
