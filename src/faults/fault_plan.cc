#include "src/faults/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace defl {
namespace {

constexpr const char* kHeaderTag = "faultplan/1";

Result<double> ParseNumber(const std::string& value, const std::string& context) {
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      !std::isfinite(parsed)) {
    return Error{"bad numeric value in '" + context + "'"};
  }
  return parsed;
}

Result<int64_t> ParseInteger(const std::string& value, const std::string& context) {
  const Result<double> parsed = ParseNumber(value, context);
  if (!parsed.ok()) {
    return Error{parsed.error()};
  }
  if (parsed.value() != std::floor(parsed.value()) ||
      std::abs(parsed.value()) > 9.0e15) {
    return Error{"expected an integer in '" + context + "'"};
  }
  return static_cast<int64_t>(parsed.value());
}

// Splits "key=value"; returns false on malformed tokens.
bool SplitKeyValue(const std::string& token, std::string* key, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

std::string FormatDouble(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAgentUnresponsive:
      return "agent-unresponsive";
    case FaultKind::kAgentSlow:
      return "agent-slow";
    case FaultKind::kAgentShortDelivery:
      return "agent-short";
    case FaultKind::kWireDrop:
      return "wire-drop";
    case FaultKind::kWireCorrupt:
      return "wire-corrupt";
    case FaultKind::kUnplugPartial:
      return "unplug-partial";
    case FaultKind::kHvLatencySpike:
      return "hv-latency-spike";
    case FaultKind::kServerDegrade:
      return "server-degrade";
    case FaultKind::kServerCrash:
      return "server-crash";
    case FaultKind::kServerRecover:
      return "server-recover";
  }
  return "?";
}

Result<FaultKind> FaultKindFromName(const std::string& name) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const FaultKind kind = static_cast<FaultKind>(i);
    if (name == FaultKindName(kind)) {
      return kind;
    }
  }
  return Error{"unknown fault kind: '" + name + "'"};
}

bool IsServerEventKind(FaultKind kind) {
  return kind == FaultKind::kServerDegrade || kind == FaultKind::kServerCrash ||
         kind == FaultKind::kServerRecover;
}

namespace {

// Site scopes intersect when either side is the -1 wildcard or the ids match.
bool SiteScopesIntersect(int64_t a, int64_t b) {
  return a == -1 || b == -1 || a == b;
}

// Two rules of the same kind aimed at an intersecting site are in conflict
// when they could fire together: for scheduled server events that means the
// same instant (a duplicate crash/recover), for windowed mechanism faults an
// overlapping [start, end] (the probabilities would silently compound).
bool RulesConflict(const FaultRule& a, const FaultRule& b) {
  if (a.kind != b.kind || !SiteScopesIntersect(a.vm, b.vm) ||
      !SiteScopesIntersect(a.server, b.server)) {
    return false;
  }
  if (IsServerEventKind(a.kind)) {
    return a.start_s == b.start_s;
  }
  return std::max(a.start_s, b.start_s) <= std::min(a.end_s, b.end_s);
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::vector<int> rule_lines;  // source line of each accepted rule
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string where = "line " + std::to_string(line_no);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first) || first[0] == '#') {
      continue;  // blank or comment
    }
    if (!saw_header) {
      if (first != kHeaderTag) {
        return Error{where + ": expected '" + kHeaderTag + "' header, got '" +
                     first + "'"};
      }
      saw_header = true;
      std::string token;
      while (tokens >> token) {
        std::string key, value;
        if (!SplitKeyValue(token, &key, &value) || key != "seed") {
          return Error{where + ": bad header token '" + token + "'"};
        }
        const Result<int64_t> seed = ParseInteger(value, token);
        if (!seed.ok()) {
          return Error{where + ": " + seed.error()};
        }
        plan.seed = static_cast<uint64_t>(seed.value());
      }
      continue;
    }
    if (first != "rule") {
      return Error{where + ": expected 'rule', got '" + first + "'"};
    }
    FaultRule rule;
    bool have_kind = false;
    std::string token;
    while (tokens >> token) {
      std::string key, value;
      if (!SplitKeyValue(token, &key, &value)) {
        return Error{where + ": malformed token '" + token + "'"};
      }
      if (key == "kind") {
        const Result<FaultKind> kind = FaultKindFromName(value);
        if (!kind.ok()) {
          return Error{where + ": " + kind.error()};
        }
        rule.kind = kind.value();
        have_kind = true;
      } else if (key == "vm" || key == "server" || key == "max") {
        const Result<int64_t> parsed = ParseInteger(value, token);
        if (!parsed.ok()) {
          return Error{where + ": " + parsed.error()};
        }
        (key == "vm" ? rule.vm : key == "server" ? rule.server : rule.max_count) =
            parsed.value();
      } else if (key == "p" || key == "magnitude" || key == "start" ||
                 key == "end" || key == "at") {
        const Result<double> parsed = ParseNumber(value, token);
        if (!parsed.ok()) {
          return Error{where + ": " + parsed.error()};
        }
        if (key == "p") {
          rule.probability = parsed.value();
        } else if (key == "magnitude") {
          rule.magnitude = parsed.value();
        } else if (key == "start") {
          rule.start_s = parsed.value();
        } else if (key == "end") {
          rule.end_s = parsed.value();
        } else {  // at
          rule.start_s = parsed.value();
          rule.end_s = parsed.value();
        }
      } else {
        return Error{where + ": unknown key '" + key + "'"};
      }
    }
    if (!have_kind) {
      return Error{where + ": rule is missing kind="};
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      return Error{where + ": probability must be in [0, 1]"};
    }
    if (rule.magnitude < 0.0) {
      return Error{where + ": magnitude must be >= 0"};
    }
    if (rule.end_s < rule.start_s) {
      return Error{where + ": end before start (duration would be negative)"};
    }
    if (rule.start_s < 0.0) {
      return Error{where + ": start must be >= 0"};
    }
    if (rule.vm < -1) {
      return Error{where + ": vm must be -1 (any) or a VM id >= 0"};
    }
    if (rule.server < -1) {
      return Error{where + ": server must be -1 (any) or a server id >= 0"};
    }
    if (rule.max_count < -1 || rule.max_count == 0) {
      return Error{where + ": max must be -1 (unlimited) or >= 1 "
                   "(max=0 would disable the rule; delete it instead)"};
    }
    if (IsServerEventKind(rule.kind) && rule.vm >= 0) {
      return Error{where + ": kind " + FaultKindName(rule.kind) +
                   " targets servers; vm= does not apply"};
    }
    if (!IsServerEventKind(rule.kind) && rule.end_s == rule.start_s) {
      return Error{where + ": zero-duration window can never fire for kind " +
                   FaultKindName(rule.kind) +
                   " (at= schedules server events; use start=/end= here)"};
    }
    for (size_t i = 0; i < plan.rules.size(); ++i) {
      if (RulesConflict(plan.rules[i], rule)) {
        return Error{
            where + ": rule conflicts with the rule at line " +
            std::to_string(rule_lines[i]) +
            (IsServerEventKind(rule.kind)
                 ? " (same kind scheduled at the same time for an "
                   "overlapping server scope)"
                 : " (same kind with overlapping windows and site scopes; "
                   "the probabilities would compound)")};
      }
    }
    plan.rules.push_back(rule);
    rule_lines.push_back(line_no);
  }
  if (!saw_header) {
    return Error{"missing '" + std::string(kHeaderTag) + "' header"};
  }
  return plan;
}

std::string EncodeFaultPlan(const FaultPlan& plan) {
  std::ostringstream os;
  os << kHeaderTag << " seed=" << plan.seed << "\n";
  for (const FaultRule& rule : plan.rules) {
    os << "rule kind=" << FaultKindName(rule.kind) << " vm=" << rule.vm
       << " server=" << rule.server << " p=" << FormatDouble(rule.probability)
       << " magnitude=" << FormatDouble(rule.magnitude)
       << " start=" << FormatDouble(rule.start_s);
    if (rule.end_s < FaultRule::kNoEnd) {
      os << " end=" << FormatDouble(rule.end_s);
    }
    os << " max=" << rule.max_count << "\n";
  }
  return os.str();
}

Result<FaultPlan> LoadFaultPlanFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{"cannot open fault plan file '" + path + "'"};
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseFaultPlan(text);
}

}  // namespace defl
