file(REMOVE_RECURSE
  "libdefl_hypervisor.a"
)
