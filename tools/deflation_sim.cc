// deflation_sim: command-line driver for the trace-driven cluster simulator.
//
// Runs a synthetic or user-provided VM trace through the deflation-based
// cluster manager (or the preemption-only baseline) and reports utilization,
// overcommitment, preemption probability, delivered resource-hours, and the
// Section 8 pricing comparison. Long runs can checkpoint to disk and resume
// later: a killed-and-resumed run produces byte-identical --metrics-out /
// --trace-out files to an uninterrupted one (DESIGN.md §11).
//
// Examples:
//   deflation_sim --servers=100 --load=1.6 --duration-h=12
//   deflation_sim --workload=examples/interactive.workload   # declarative spec
//   deflation_sim --strategy=preemption --placement=2-choices --load=1.4
//   deflation_sim --trace-file=my_trace.csv --pricing
//   deflation_sim --save-trace=generated.csv --load=1.2
//   deflation_sim --metrics-out=metrics.json --trace-out=events.jsonl
//   deflation_sim --fault-plan=examples/faults_cluster.plan
//   deflation_sim --duration-h=48 --snapshot-every-h=6 --snapshot-out=run.snap
//   deflation_sim --stop-after-h=12 --snapshot-out=run.snap   # checkpoint + exit
//   deflation_sim --resume-from=run.snap                      # continue it
//   deflation_sim --durable-dir=run.d   # crash-safe: WAL + auto-checkpoints;
//                                       # rerun the same command to recover
#include <cstdio>
#include <sstream>
#include <string>

#include "src/cluster/durable_session.h"
#include "src/cluster/sim_session.h"
#include "src/cluster/trace_io.h"
#include "src/common/atomic_file.h"
#include "src/common/sim_options.h"
#include "src/faults/fault_plan.h"
#include "src/telemetry/telemetry.h"

using namespace defl;

namespace {

struct Options {
  // Run-control and cluster-shape flags (not part of the workload).
  int64_t servers = 50;
  int64_t server_cpus = 32;
  double server_mem_gb = 256.0;
  std::string strategy = "deflation";
  std::string placement = "best-fit";
  double reinflate_period_s = 0.0;
  bool predictive = false;
  bool pricing = false;
  std::string save_trace;
  double recovery_grace_s = 600.0;
  int64_t threads = 1;
  double snapshot_every_h = 0.0;
  std::string snapshot_out;
  std::string resume_from;
  double stop_after_h = 0.0;
  std::string durable_dir;
  double checkpoint_every_h = 1.0;
  double checkpoint_min_wall_s = 5.0;
  int64_t keep_checkpoints = 3;
  // The declarative workload surface: --workload=FILE loads a WorkloadSpec;
  // the deprecated per-knob flags below build the same spec (and cannot be
  // combined with --workload).
  std::string workload;
  double load = 1.6;
  double duration_h = 12.0;
  double low_pri_fraction = 0.6;
  int64_t seed = 42;
  std::string trace_file;
  bool diurnal = false;
  double diurnal_amplitude = 0.5;
  double diurnal_period_h = 24.0;
  double diurnal_phase_h = 0.0;
  double burst_rate_per_h = 0.0;
  double burst_duration_s = 600.0;
  double burst_multiplier = 2.0;
  int64_t arrival_seed = 7;
  bool interactive = false;
  double interactive_fraction = 0.3;
  int64_t interactive_seed = 21;
  double slo_p99_ms = 100.0;
  std::string slo_policy = "slo";
  double slo_period_s = 60.0;
  double rate_rps_per_cpu = 30.0;
  double rate_amplitude = 0.6;
  double rate_period_h = 24.0;
};

// Every flag that is a deprecated alias for a WorkloadSpec key (same
// spelling); --workload excludes all of them.
constexpr const char* kWorkloadFlagNames[] = {
    "load",           "duration-h",       "low-pri-fraction",
    "seed",           "trace-file",       "fault-plan",
    "diurnal",        "diurnal-amplitude", "diurnal-period-h",
    "diurnal-phase-h", "burst-rate-per-h", "burst-duration-s",
    "burst-multiplier", "arrival-seed",    "interactive",
    "interactive-fraction", "interactive-seed", "slo-p99-ms",
    "slo-policy",     "slo-period-s",     "rate-rps-per-cpu",
    "rate-amplitude", "rate-period-h",
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  return 1;
}

const char* StrategyName(ReclamationStrategy strategy) {
  return strategy == ReclamationStrategy::kDeflation ? "deflation" : "preemption";
}

const char* PlacementName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kTwoChoices:
      return "2-choices";
  }
  return "?";
}

// Translates the resolved workload spec plus the run-control flags into a
// fresh-run config (trace generation or replay, arrival model, interactive
// mix, fault plan, strategy/placement). Shared by the classic run path and a
// durable run's first generation; resumed and recovered runs take their
// config from the snapshot instead.
Result<ClusterSimConfig> BuildFreshConfig(const Options& opt,
                                          const WorkloadSpec& spec,
                                          const SimCommonOptions& common,
                                          TelemetryContext& telemetry) {
  ClusterSimConfig config;
  config.num_servers = static_cast<int>(opt.servers);
  config.server_capacity =
      ResourceVector(static_cast<double>(opt.server_cpus), opt.server_mem_gb * 1024.0,
                     1000.0, 10000.0);
  config.trace.duration_s = spec.duration_h * 3600.0;
  config.trace.max_lifetime_s = std::min(config.trace.duration_s, 8.0 * 3600.0);
  config.trace.low_priority_fraction = spec.low_pri_fraction;
  config.trace.seed = spec.seed;
  config.trace = WithTargetLoad(config.trace, spec.load, config.num_servers,
                                config.server_capacity);
  if (spec.diurnal) {
    config.arrivals.enabled = true;
    config.arrivals.diurnal_amplitude = spec.diurnal_amplitude;
    config.arrivals.diurnal_period_s = spec.diurnal_period_h * 3600.0;
    config.arrivals.diurnal_phase_s = spec.diurnal_phase_h * 3600.0;
    config.arrivals.burst_rate_per_s = spec.burst_rate_per_h / 3600.0;
    config.arrivals.burst_duration_s = spec.burst_duration_s;
    config.arrivals.burst_multiplier = spec.burst_multiplier;
    config.arrivals.seed = spec.arrival_seed;
  }
  if (spec.interactive) {
    config.interactive.enabled = true;
    config.interactive.fraction = spec.interactive_fraction;
    config.interactive.seed = spec.interactive_seed;
    config.interactive.slo_p99_ms = spec.slo_p99_ms;
    config.interactive.slo_aware = spec.slo_policy != "uniform";
    config.interactive.control_period_s = spec.slo_period_s;
    config.interactive.rate_rps_per_cpu = spec.rate_rps_per_cpu;
    config.interactive.rate_amplitude = spec.rate_amplitude;
    config.interactive.rate_period_s = spec.rate_period_h * 3600.0;
  }
  config.reinflate_period_s = opt.reinflate_period_s;
  config.predictive_holdback = opt.predictive;
  config.recovery_grace_s = opt.recovery_grace_s;
  config.cluster.threads = static_cast<int>(opt.threads);
  if (!spec.fault_plan.empty()) {
    Result<FaultPlan> plan = LoadFaultPlanFile(spec.fault_plan);
    if (!plan.ok()) {
      return Error{"cannot load fault plan: " + plan.error()};
    }
    config.fault_plan = std::move(plan.value());
    std::printf("injecting faults from %s (%zu rules, seed %llu)\n",
                spec.fault_plan.c_str(), config.fault_plan.rules.size(),
                static_cast<unsigned long long>(config.fault_plan.seed));
  }

  if (opt.strategy == "deflation") {
    config.cluster.strategy = ReclamationStrategy::kDeflation;
  } else if (opt.strategy == "preemption") {
    config.cluster.strategy = ReclamationStrategy::kPreemptionOnly;
  } else {
    return Error{"unknown --strategy '" + opt.strategy + "'"};
  }
  if (opt.placement == "best-fit") {
    config.cluster.placement = PlacementPolicy::kBestFit;
  } else if (opt.placement == "first-fit") {
    config.cluster.placement = PlacementPolicy::kFirstFit;
  } else if (opt.placement == "2-choices") {
    config.cluster.placement = PlacementPolicy::kTwoChoices;
  } else {
    return Error{"unknown --placement '" + opt.placement + "'"};
  }

  if (!spec.trace_file.empty()) {
    Result<std::vector<TraceEvent>> loaded = LoadTraceFile(spec.trace_file);
    if (!loaded.ok()) {
      return Error{"cannot load trace: " + loaded.error()};
    }
    config.explicit_trace = std::move(loaded.value());
    if (!config.explicit_trace.empty()) {
      config.trace.duration_s = std::max(
          config.trace.duration_s, config.explicit_trace.back().arrival_s + 3600.0);
    }
    std::printf("replaying %zu events from %s\n", config.explicit_trace.size(),
                spec.trace_file.c_str());
  }
  if (!opt.save_trace.empty()) {
    const std::vector<TraceEvent> generated =
        config.arrivals.enabled
            ? GenerateDiurnalTrace(config.trace, config.arrivals)
            : GenerateTrace(config.trace);
    const Result<bool> saved = SaveTraceFile(generated, opt.save_trace);
    if (!saved.ok()) {
      return Error{saved.error()};
    }
    std::printf("wrote %zu events to %s\n", generated.size(),
                opt.save_trace.c_str());
  }

  // Recording the full event trace costs memory; only do it when asked.
  // The enabled bit rides along in snapshots, so a resumed run keeps the
  // original run's choice.
  telemetry.trace().set_enabled(!common.trace_out.empty());
  config.telemetry = &telemetry;
  return config;
}

// Exports --metrics-out / --trace-out (atomically: a killed export never
// leaves a torn file for a consumer to read) and prints the run report.
int WriteOutputsAndReport(const Options& opt, const SimCommonOptions& common,
                          TelemetryContext& telemetry,
                          const ClusterSimConfig& cfg,
                          const ClusterSimResult& r) {
  if (!common.metrics_out.empty()) {
    std::ostringstream os;
    telemetry.metrics().DumpJson(os);
    os << "\n";
    const Result<bool> wrote = WriteFileAtomic(common.metrics_out, os.str());
    if (!wrote.ok()) {
      return Fail("cannot write --metrics-out: " + wrote.error());
    }
    std::printf("wrote metrics to %s\n", common.metrics_out.c_str());
  }
  if (!common.trace_out.empty()) {
    std::ostringstream os;
    telemetry.trace().DumpJsonl(os);
    const Result<bool> wrote = WriteFileAtomic(common.trace_out, os.str());
    if (!wrote.ok()) {
      return Fail("cannot write --trace-out: " + wrote.error());
    }
    std::printf("wrote %zu trace events to %s\n", telemetry.trace().size(),
                common.trace_out.c_str());
  }

  std::printf("\n=== deflation_sim: %d servers x %.0fc/%.0fGB, %s, %s ===\n",
              cfg.num_servers, cfg.server_capacity[ResourceKind::kCpu],
              cfg.server_capacity[ResourceKind::kMemory] / 1024.0,
              StrategyName(cfg.cluster.strategy), PlacementName(cfg.cluster.placement));
  std::printf("VMs launched        %ld (%ld transient), rejected %ld (%.1f%%)\n",
              r.counters.launched, r.counters.launched_low_priority,
              r.counters.rejected, 100.0 * r.rejection_rate);
  std::printf("preempted           %ld transient VMs (probability %.3f)\n",
              r.counters.preempted, r.preemption_probability);
  std::printf("utilization         %.3f mean\n", r.mean_utilization);
  std::printf("overcommitment      %.3f mean, %.3f peak\n", r.mean_overcommitment,
              r.peak_overcommitment);
  std::printf("transient quality   %.3f of nominal allocation on average\n",
              r.low_priority_allocation_quality);
  std::printf("delivered           %.0f effective transient CPU-hours "
              "(%.0f nominal)\n",
              r.usage.low_pri_effective_cpu_hours, r.usage.low_pri_nominal_cpu_hours);
  if (!cfg.fault_plan.rules.empty()) {
    std::printf("faults              %ld server crashes (%ld recovered), "
                "%ld VMs re-placed, %ld crash-preempted\n",
                r.server_crashes, r.server_recoveries, r.crash_replacements,
                r.crash_preemptions);
  }
  if (cfg.interactive.enabled) {
    std::printf("interactive         %ld web VMs, p99 target %.0fms (%s policy)\n",
                r.interactive_vms, cfg.interactive.slo_p99_ms,
                cfg.interactive.slo_aware ? "slo" : "uniform");
    std::printf("slo                 violation rate %.3f, p99 mean %.1fms / "
                "peak %.0fms, %ld reinflations, %ld victim deflations\n",
                r.slo_violation_rate, r.slo_mean_p99_ms, r.slo_peak_p99_ms,
                r.slo_reinflate_ops, r.slo_victim_deflations);
  }

  if (opt.pricing) {
    const PricingModel model;
    std::printf("\npricing (on-demand $%.3f/vCPU-h):\n", model.on_demand_cpu_hour);
    const auto report = [](const char* label, const RevenueReport& rr) {
      std::printf("  %-10s revenue $%8.2f  customer cost $%8.2f  losses $%7.2f  "
                  "effective $%.4f/CPU-h\n",
                  label, rr.provider_revenue, rr.customer_cost, rr.customer_loss,
                  rr.effective_cost_per_cpu_hour);
    };
    report("flat", PriceDeflatableFlat(r.usage, model));
    report("raas", PriceDeflatableRaaS(r.usage, model));
    report("spot", PricePreemptible(r.usage, model));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  SimOptionsParser options(
      "deflation_sim: trace-driven cluster simulation with resource deflation");
  FlagParser& parser = options.flags();
  parser.AddInt("servers", "number of physical servers", &opt.servers);
  parser.AddInt("server-cpus", "cores per server", &opt.server_cpus);
  parser.AddDouble("server-mem-gb", "memory per server (GB)", &opt.server_mem_gb);
  parser.AddString("workload",
                   "load the workload from this spec file (`key = value` "
                   "lines; see DESIGN.md §16); excludes the per-knob "
                   "workload flags below",
                   &opt.workload);
  parser.AddDouble("load",
                   "offered CPU load as a fraction of capacity "
                   "(workload alias; prefer --workload)",
                   &opt.load);
  parser.AddDouble("duration-h", "simulated hours (workload alias)",
                   &opt.duration_h);
  parser.AddDouble("low-pri-fraction",
                   "fraction of transient VM arrivals (workload alias)",
                   &opt.low_pri_fraction);
  parser.AddString("strategy", "deflation | preemption", &opt.strategy);
  parser.AddString("placement", "best-fit | first-fit | 2-choices", &opt.placement);
  parser.AddInt("seed", "trace RNG seed (workload alias)", &opt.seed);
  parser.AddDouble("reinflate-period-s", "proactive reinflation period (0 = off)",
                   &opt.reinflate_period_s);
  parser.AddBool("predictive", "EWMA holdback during proactive reinflation",
                 &opt.predictive);
  parser.AddBool("pricing", "print the Section 8 pricing comparison", &opt.pricing);
  parser.AddString("trace-file",
                   "replay this CSV trace instead of generating "
                   "(workload alias)",
                   &opt.trace_file);
  parser.AddString("save-trace", "write the generated trace to this CSV file",
                   &opt.save_trace);
  parser.AddBool("diurnal",
                 "draw arrivals from the diurnal/bursty generator instead of "
                 "a flat-rate Poisson process (--load stays the mean) "
                 "(workload alias)",
                 &opt.diurnal);
  parser.AddDouble("diurnal-amplitude",
                   "sinusoidal rate swing around the mean, 0..1 "
                   "(workload alias)",
                   &opt.diurnal_amplitude);
  parser.AddDouble("diurnal-period-h", "diurnal cycle length (hours) "
                   "(workload alias)",
                   &opt.diurnal_period_h);
  parser.AddDouble("diurnal-phase-h", "offset of the first rate peak (hours) "
                   "(workload alias)",
                   &opt.diurnal_phase_h);
  parser.AddDouble("burst-rate-per-h", "Poisson rate of burst onsets (0 = off) "
                   "(workload alias)",
                   &opt.burst_rate_per_h);
  parser.AddDouble("burst-duration-s", "length of each burst window "
                   "(workload alias)",
                   &opt.burst_duration_s);
  parser.AddDouble("burst-multiplier", "rate multiplier inside a burst "
                   "(workload alias)",
                   &opt.burst_multiplier);
  parser.AddInt("arrival-seed",
                "RNG seed for diurnal arrival times (independent of --seed) "
                "(workload alias)",
                &opt.arrival_seed);
  parser.AddBool("interactive",
                 "tag a fraction of transient VMs as interactive web servers "
                 "with an SLO-aware deflation controller (workload alias)",
                 &opt.interactive);
  parser.AddDouble("interactive-fraction",
                   "fraction of transient arrivals tagged interactive "
                   "(workload alias)",
                   &opt.interactive_fraction);
  parser.AddInt("interactive-seed",
                "RNG seed for interactive tagging (workload alias)",
                &opt.interactive_seed);
  parser.AddDouble("slo-p99-ms",
                   "p99 latency target for interactive VMs, milliseconds "
                   "(workload alias)",
                   &opt.slo_p99_ms);
  parser.AddString("slo-policy",
                   "slo = SLO-aware controller, uniform = measure only "
                   "(workload alias)",
                   &opt.slo_policy);
  parser.AddDouble("slo-period-s",
                   "SLO controller check period, seconds (workload alias)",
                   &opt.slo_period_s);
  parser.AddDouble("rate-rps-per-cpu",
                   "mean offered request rate per nominal CPU (workload alias)",
                   &opt.rate_rps_per_cpu);
  parser.AddDouble("rate-amplitude",
                   "diurnal swing of the offered request rate, 0..1 "
                   "(workload alias)",
                   &opt.rate_amplitude);
  parser.AddDouble("rate-period-h",
                   "offered-rate cycle length (hours) (workload alias)",
                   &opt.rate_period_h);
  parser.AddDouble("recovery-grace-s",
                   "probation before a recovered server takes placements",
                   &opt.recovery_grace_s);
  parser.AddInt("threads",
                "worker threads for sharded sweeps (outputs are identical "
                "for every value)",
                &opt.threads);
  parser.AddDouble("snapshot-every-h",
                   "checkpoint to --snapshot-out every N simulated hours (0 = off)",
                   &opt.snapshot_every_h);
  parser.AddString("snapshot-out", "checkpoint file for --snapshot-every-h / "
                   "--stop-after-h",
                   &opt.snapshot_out);
  parser.AddString("resume-from",
                   "restore the simulation from this snapshot instead of "
                   "starting fresh (config flags come from the snapshot; "
                   "--threads still applies)",
                   &opt.resume_from);
  parser.AddDouble("stop-after-h",
                   "run N simulated hours, checkpoint to --snapshot-out, and "
                   "exit without finishing",
                   &opt.stop_after_h);
  parser.AddString("durable-dir",
                   "crash-safe run directory (WAL + atomic auto-checkpoints); "
                   "rerunning the same command after a crash recovers and "
                   "continues, with byte-identical outputs (DESIGN.md §13)",
                   &opt.durable_dir);
  parser.AddDouble("checkpoint-every-h",
                   "auto-checkpoint cadence inside --durable-dir, simulated "
                   "hours (0 = only genesis and final checkpoints)",
                   &opt.checkpoint_every_h);
  parser.AddDouble("checkpoint-min-wall-s",
                   "skip a cadence checkpoint if the previous one landed "
                   "less than this many wall-clock seconds ago, bounding the "
                   "durability overhead on fast runs (0 = checkpoint every "
                   "cadence boundary)",
                   &opt.checkpoint_min_wall_s);
  parser.AddInt("keep-checkpoints",
                "newest K checkpoints retained in --durable-dir",
                &opt.keep_checkpoints);
  const Result<std::vector<std::string>> parsed = options.Parse(argc, argv);
  if (!parsed.ok()) {
    return Fail(parsed.error());
  }
  const SimCommonOptions& common = options.common();

  // Resolve the workload: --workload=FILE loads and validates a spec file;
  // otherwise the deprecated flag aliases build the same spec (provenance
  // line 0, so validation errors keep the --flag wording). Either way,
  // ValidateWorkloadSpec owns every cross-key rule -- e.g. a replayed trace
  // excluding the diurnal generator -- with one wording for both surfaces.
  WorkloadSpec spec;
  std::string spec_source = "<flags>";
  if (parser.WasSet("workload")) {
    for (const char* name : kWorkloadFlagNames) {
      if (parser.WasSet(name)) {
        return Fail("--workload and --" + std::string(name) +
                    " cannot be combined (the workload spec file owns that "
                    "setting)");
      }
    }
    if (!opt.resume_from.empty()) {
      return Fail("--resume-from and --workload cannot be combined (the "
                  "snapshot already carries its workload)");
    }
    const Result<std::string> text = ReadFileToString(opt.workload);
    if (!text.ok()) {
      return Fail("cannot read --workload: " + text.error());
    }
    Result<WorkloadSpec> loaded = ParseWorkloadSpec(text.value(), opt.workload);
    if (!loaded.ok()) {
      return Fail(loaded.error());
    }
    spec = std::move(loaded.value());
    spec_source = opt.workload;
  } else {
    spec.load = opt.load;
    spec.duration_h = opt.duration_h;
    spec.low_pri_fraction = opt.low_pri_fraction;
    spec.seed = static_cast<uint64_t>(opt.seed);
    spec.trace_file = opt.trace_file;
    spec.fault_plan = common.fault_plan;
    spec.diurnal = opt.diurnal;
    spec.diurnal_amplitude = opt.diurnal_amplitude;
    spec.diurnal_period_h = opt.diurnal_period_h;
    spec.diurnal_phase_h = opt.diurnal_phase_h;
    spec.burst_rate_per_h = opt.burst_rate_per_h;
    spec.burst_duration_s = opt.burst_duration_s;
    spec.burst_multiplier = opt.burst_multiplier;
    spec.arrival_seed = static_cast<uint64_t>(opt.arrival_seed);
    spec.interactive = opt.interactive;
    spec.interactive_fraction = opt.interactive_fraction;
    spec.interactive_seed = static_cast<uint64_t>(opt.interactive_seed);
    spec.slo_p99_ms = opt.slo_p99_ms;
    spec.slo_policy = opt.slo_policy;
    spec.slo_period_s = opt.slo_period_s;
    spec.rate_rps_per_cpu = opt.rate_rps_per_cpu;
    spec.rate_amplitude = opt.rate_amplitude;
    spec.rate_period_h = opt.rate_period_h;
    for (const char* name : kWorkloadFlagNames) {
      if (parser.WasSet(name)) {
        spec.provenance.emplace(name, 0);
      }
    }
  }
  {
    const Result<bool> valid = ValidateWorkloadSpec(spec, spec_source);
    if (!valid.ok()) {
      return Fail(valid.error());
    }
  }

  // Flag combinations that cannot mean anything: replaying an existing
  // trace leaves nothing newly generated to save, and a snapshot carries
  // its own trace and fault plan. (Workload-internal exclusions like
  // trace-file vs diurnal live in ValidateWorkloadSpec above.)
  for (const Result<bool>& check : {
           RejectFlagCombination(
               "trace-file", !spec.trace_file.empty(), "save-trace",
               !opt.save_trace.empty(),
               "replaying an existing trace generates nothing to save"),
           RejectFlagCombination("resume-from", !opt.resume_from.empty(),
                                 "trace-file", !opt.trace_file.empty(),
                                 "the snapshot already carries its trace"),
           RejectFlagCombination("resume-from", !opt.resume_from.empty(),
                                 "save-trace", !opt.save_trace.empty(),
                                 "the snapshot already carries its trace"),
           RejectFlagCombination("resume-from", !opt.resume_from.empty(),
                                 "fault-plan", !common.fault_plan.empty(),
                                 "the snapshot already carries its fault plan"),
           RejectFlagCombination("resume-from", !opt.resume_from.empty(),
                                 "diurnal", opt.diurnal,
                                 "the snapshot already carries its trace"),
           RejectFlagCombination("resume-from", !opt.resume_from.empty(),
                                 "interactive", opt.interactive,
                                 "the snapshot already carries its workload"),
           // The durable directory IS the checkpoint/resume mechanism; mixing
           // it with the single-snapshot flags would leave two sources of
           // truth for where the run restarts.
           RejectFlagCombination("durable-dir", !opt.durable_dir.empty(),
                                 "snapshot-out", !opt.snapshot_out.empty(),
                                 "the durable dir manages its own checkpoints"),
           RejectFlagCombination("durable-dir", !opt.durable_dir.empty(),
                                 "snapshot-every-h", opt.snapshot_every_h > 0.0,
                                 "use --checkpoint-every-h inside the durable dir"),
           RejectFlagCombination("durable-dir", !opt.durable_dir.empty(),
                                 "stop-after-h", opt.stop_after_h > 0.0,
                                 "a durable run is always resumable; just kill it"),
           RejectFlagCombination("durable-dir", !opt.durable_dir.empty(),
                                 "resume-from", !opt.resume_from.empty(),
                                 "recovery comes from the durable dir itself"),
       }) {
    if (!check.ok()) {
      return Fail(check.error());
    }
  }
  if (opt.stop_after_h > 0.0 && opt.snapshot_out.empty()) {
    return Fail("--stop-after-h requires --snapshot-out");
  }
  if (opt.snapshot_every_h > 0.0 && opt.snapshot_out.empty()) {
    return Fail("--snapshot-every-h requires --snapshot-out");
  }
  if (opt.durable_dir.empty() &&
      (opt.checkpoint_every_h != 1.0 || opt.checkpoint_min_wall_s != 5.0 ||
       opt.keep_checkpoints != 3)) {
    return Fail("--checkpoint-every-h / --checkpoint-min-wall-s / "
                "--keep-checkpoints require --durable-dir");
  }
  if (opt.checkpoint_every_h < 0.0) {
    return Fail("--checkpoint-every-h must be >= 0");
  }
  if (opt.checkpoint_min_wall_s < 0.0) {
    return Fail("--checkpoint-min-wall-s must be >= 0");
  }
  if (opt.keep_checkpoints < 1) {
    return Fail("--keep-checkpoints must be >= 1");
  }
  if (opt.threads < 1) {
    return Fail("--threads must be >= 1");
  }

  TelemetryContext telemetry;

  // Durable mode: the run directory carries the whole story. A fresh
  // directory starts a new journaled run; a directory with a recoverable
  // run in it continues that run (config flags are then ignored, exactly as
  // with --resume-from -- the snapshot carries the config).
  if (!opt.durable_dir.empty()) {
    DurableSession::Options dopt;
    dopt.dir = opt.durable_dir;
    dopt.checkpoint_every_s = opt.checkpoint_every_h * 3600.0;
    dopt.min_checkpoint_wall_s = opt.checkpoint_min_wall_s;
    dopt.keep_checkpoints = static_cast<int>(opt.keep_checkpoints);
    Result<DurableSession> durable = Error{"unopened"};
    if (DurableSession::CanRecover(opt.durable_dir)) {
      dopt.telemetry = &telemetry;
      dopt.threads = static_cast<int>(opt.threads);
      durable = DurableSession::Recover(dopt);
      if (!durable.ok()) {
        return Fail(durable.error());
      }
      std::printf("recovered %s at t=%.2fh (%lld events executed)\n",
                  opt.durable_dir.c_str(),
                  durable.value().session().now() / 3600.0,
                  static_cast<long long>(
                      durable.value().session().events_executed()));
    } else {
      Result<ClusterSimConfig> config = BuildFreshConfig(opt, spec, common, telemetry);
      if (!config.ok()) {
        return Fail(config.error());
      }
      durable = DurableSession::Create(config.value(), dopt);
      if (!durable.ok()) {
        return Fail(durable.error());
      }
    }
    Result<ClusterSimResult> result = durable.value().Finish();
    if (!result.ok()) {
      return Fail(result.error());
    }
    return WriteOutputsAndReport(opt, common, telemetry,
                                 durable.value().session().config(),
                                 result.value());
  }

  Result<SimSession> session = Error{"unopened"};
  if (!opt.resume_from.empty()) {
    SimSession::RestoreOptions restore;
    restore.telemetry = &telemetry;
    restore.threads = static_cast<int>(opt.threads);
    session = SimSession::Restore(opt.resume_from, restore);
    if (!session.ok()) {
      return Fail(session.error());
    }
    std::printf("resumed from %s at t=%.2fh (%lld events executed)\n",
                opt.resume_from.c_str(), session.value().now() / 3600.0,
                static_cast<long long>(session.value().events_executed()));
  } else {
    Result<ClusterSimConfig> config = BuildFreshConfig(opt, spec, common, telemetry);
    if (!config.ok()) {
      return Fail(config.error());
    }
    session = SimSession::Open(config.value());
    if (!session.ok()) {
      return Fail(session.error());
    }
  }
  SimSession& sim = session.value();
  const ClusterSimConfig& cfg = sim.config();

  if (opt.stop_after_h > 0.0) {
    sim.StepUntil(opt.stop_after_h * 3600.0);
    const Result<bool> saved = sim.Snapshot(opt.snapshot_out);
    if (!saved.ok()) {
      return Fail(saved.error());
    }
    std::printf("checkpointed at t=%.2fh (%lld events executed) to %s\n",
                sim.now() / 3600.0,
                static_cast<long long>(sim.events_executed()),
                opt.snapshot_out.c_str());
    return 0;
  }
  if (opt.snapshot_every_h > 0.0) {
    const double period_s = opt.snapshot_every_h * 3600.0;
    for (double t = sim.now() + period_s; t < sim.duration_s(); t += period_s) {
      sim.StepUntil(t);
      const Result<bool> saved = sim.Snapshot(opt.snapshot_out);
      if (!saved.ok()) {
        return Fail(saved.error());
      }
      std::printf("checkpointed at t=%.2fh to %s\n", sim.now() / 3600.0,
                  opt.snapshot_out.c_str());
    }
  }
  const ClusterSimResult r = sim.Finish();
  return WriteOutputsAndReport(opt, common, telemetry, cfg, r);
}
