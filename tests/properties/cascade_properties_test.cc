// Property-based tests of the cascade deflation invariants, swept over
// deflation modes, target magnitudes, application footprints and agent
// behaviors (parameterized + seeded-random cases):
//
//   P1  conservation: what the layers reclaim never exceeds the request
//       (per resource), and effective allocation never goes negative;
//   P2  layering: effective = spec - unplugged - hv_reclaimed (element-wise),
//       hv_reclaimed <= guest-visible;
//   P3  safety: non-forced deflation never puts the guest under OOM pressure;
//   P4  round-trip: deflate then reinflate(everything) restores the VM
//       exactly;
//   P5  monotonicity: a larger target never reclaims less (same VM state).
#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/core/cascade.h"

namespace defl {
namespace {

// An agent that frees a configurable fraction of any memory request.
class FractionalAgent : public DeflationAgent {
 public:
  FractionalAgent(double footprint_mb, double min_mb, double willingness)
      : footprint_mb_(footprint_mb), min_mb_(min_mb), willingness_(willingness) {}

  ResourceVector SelfDeflate(const ResourceVector& target) override {
    const double want = target.memory_mb() * willingness_;
    const double freed = std::min(want, std::max(0.0, footprint_mb_ - min_mb_));
    footprint_mb_ -= freed;
    return ResourceVector(0.0, freed);
  }
  void OnReinflate(const ResourceVector& added) override {
    footprint_mb_ += added.memory_mb() * willingness_;
  }
  double MemoryFootprintMb() const override { return footprint_mb_; }

 private:
  double footprint_mb_;
  double min_mb_;
  double willingness_;
};

using CascadeCase = std::tuple<DeflationMode, double /*target fraction*/,
                               double /*footprint fraction*/, double /*willingness*/>;

class CascadePropertyTest : public ::testing::TestWithParam<CascadeCase> {
 protected:
  static VmSpec Spec() {
    VmSpec spec;
    spec.name = "prop-vm";
    spec.size = ResourceVector(8.0, 32768.0, 400.0, 2500.0);
    spec.priority = VmPriority::kLow;
    return spec;
  }
};

TEST_P(CascadePropertyTest, InvariantsHold) {
  const auto [mode, target_frac, footprint_frac, willingness] = GetParam();
  Vm vm(1, Spec());
  const double footprint = footprint_frac * vm.size().memory_mb();
  FractionalAgent agent(footprint, footprint * 0.2, willingness);
  vm.guest_os().set_app_used_mb(footprint);

  CascadeController controller(mode);
  const ResourceVector target = vm.size() * target_frac;
  const DeflationOutcome out = controller.Deflate(vm, &agent, target);

  // P1: conservation and non-negativity.
  for (const ResourceKind kind : kAllResources) {
    EXPECT_LE(out.TotalReclaimed()[kind], out.requested[kind] + 1e-9)
        << ResourceKindName(kind);
    EXPECT_GE(vm.effective()[kind], -1e-9) << ResourceKindName(kind);
    EXPECT_GE(out.unplugged[kind], -1e-9);
    EXPECT_GE(out.hv_reclaimed[kind], -1e-9);
    EXPECT_GE(out.app_freed[kind], -1e-9);
  }

  // P2: layering arithmetic.
  const ResourceVector reconstructed =
      vm.size() - vm.guest_os().unplugged() - vm.hv_reclaimed();
  for (const ResourceKind kind : kAllResources) {
    EXPECT_NEAR(vm.effective()[kind], std::max(0.0, reconstructed[kind]), 1e-6);
    EXPECT_LE(vm.hv_reclaimed()[kind], vm.guest_visible()[kind] + 1e-9);
  }

  // P3: safety for non-forced modes.
  if (mode != DeflationMode::kOsOnly) {
    EXPECT_FALSE(vm.guest_os().UnderOomPressure())
        << "non-forced deflation must not OOM the guest";
  }

  // P4: full reinflation restores the VM exactly.
  const ResourceVector deflated_by = vm.size() - vm.effective();
  controller.Reinflate(vm, &agent, deflated_by);
  for (const ResourceKind kind : kAllResources) {
    EXPECT_NEAR(vm.effective()[kind], vm.size()[kind], 1e-6) << ResourceKindName(kind);
  }
  EXPECT_TRUE(vm.guest_os().unplugged().IsZero(1e-6));
  EXPECT_TRUE(vm.hv_reclaimed().IsZero(1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CascadePropertyTest,
    ::testing::Combine(
        ::testing::Values(DeflationMode::kHypervisorOnly, DeflationMode::kOsOnly,
                          DeflationMode::kVmLevel, DeflationMode::kCascade),
        ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9),
        ::testing::Values(0.2, 0.5, 0.85),
        ::testing::Values(0.0, 0.5, 1.0)));

class CascadeMonotonicityTest : public ::testing::TestWithParam<DeflationMode> {};

TEST_P(CascadeMonotonicityTest, LargerTargetsReclaimAtLeastAsMuch) {
  const DeflationMode mode = GetParam();
  ResourceVector prev_reclaimed;
  for (double f = 0.0; f <= 0.9; f += 0.05) {
    VmSpec spec;
    spec.name = "mono-vm";
    spec.size = ResourceVector(8.0, 32768.0, 400.0, 2500.0);
    Vm vm(1, spec);
    vm.guest_os().set_app_used_mb(16000.0);
    CascadeController controller(mode);
    const DeflationOutcome out = controller.Deflate(vm, nullptr, vm.size() * f);
    for (const ResourceKind kind : kAllResources) {
      EXPECT_GE(out.TotalReclaimed()[kind], prev_reclaimed[kind] - 1e-9)
          << DeflationModeName(mode) << " " << ResourceKindName(kind) << " at " << f;
    }
    prev_reclaimed = out.TotalReclaimed();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, CascadeMonotonicityTest,
                         ::testing::Values(DeflationMode::kHypervisorOnly,
                                           DeflationMode::kOsOnly,
                                           DeflationMode::kVmLevel,
                                           DeflationMode::kCascade));

// Randomized sequences of deflate/reinflate operations keep all invariants.
class CascadeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CascadeFuzzTest, RandomOperationSequencesKeepInvariants) {
  Rng rng(GetParam());
  VmSpec spec;
  spec.name = "fuzz-vm";
  spec.size = ResourceVector(16.0, 65536.0, 800.0, 5000.0);
  Vm vm(1, spec);
  FractionalAgent agent(30000.0, 5000.0, 0.7);
  vm.guest_os().set_app_used_mb(agent.MemoryFootprintMb());
  CascadeController controller(DeflationMode::kCascade);

  for (int step = 0; step < 200; ++step) {
    const ResourceVector amount(rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 32768.0),
                                rng.Uniform(0.0, 400.0), rng.Uniform(0.0, 2500.0));
    if (rng.Chance(0.5)) {
      controller.Deflate(vm, &agent, amount);
    } else {
      controller.Reinflate(vm, &agent, amount);
    }
    for (const ResourceKind kind : kAllResources) {
      ASSERT_GE(vm.effective()[kind], -1e-9) << "step " << step;
      ASSERT_LE(vm.effective()[kind], vm.size()[kind] + 1e-9) << "step " << step;
      ASSERT_LE(vm.hv_reclaimed()[kind], vm.guest_visible()[kind] + 1e-9)
          << "step " << step;
      ASSERT_GE(vm.guest_os().unplugged()[kind], -1e-9) << "step " << step;
    }
    ASSERT_FALSE(vm.guest_os().UnderOomPressure()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeFuzzTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace defl
