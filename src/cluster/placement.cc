#include "src/cluster/placement.h"

#include <algorithm>

namespace defl {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kTwoChoices:
      return "2-choices";
  }
  return "?";
}

double PlacementFitness(const ResourceVector& demand,
                        const ResourceVector& availability) {
  return ResourceVector::CosineSimilarity(demand, availability);
}

ResourceVector ServerAvailability(const Server& server, AvailabilityMode mode) {
  switch (mode) {
    case AvailabilityMode::kFreeOnly:
      return server.Free();
    case AvailabilityMode::kFreePlusDeflatable:
      return server.Availability();
    case AvailabilityMode::kFreePlusPreemptible:
      return server.Free() + server.Preemptible();
  }
  return server.Free();
}

namespace {

// Per-chunk scan result. `first_feasible` serves first-fit (min over chunks);
// (fitness, best_feasible) serves best-fit. Both reductions are
// order-independent under their total-order tie-breaks, so the fold is
// invariant to chunk boundaries and thread count.
struct ChunkScan {
  size_t first_feasible = SIZE_MAX;
  size_t best_feasible = SIZE_MAX;
  double best_fitness = -1.0;
};

// Shard the candidate scan only when it is worth a fork-join dispatch.
constexpr size_t kMinParallelCandidates = 32;
constexpr size_t kScanChunk = 64;

bool UseParallelScan(const std::vector<Server*>& servers, ThreadPool* pool) {
  return pool != nullptr && pool->parallelism() > 1 &&
         servers.size() >= kMinParallelCandidates;
}

// Scans candidates [begin, end) exactly like the sequential loops below:
// feasibility and fitness consume one availability vector per server.
ChunkScan ScanRange(const ResourceVector& demand, const std::vector<Server*>& servers,
                    AvailabilityMode mode, bool need_fitness, size_t begin,
                    size_t end) {
  ChunkScan out;
  for (size_t i = begin; i < end; ++i) {
    const ResourceVector availability = ServerAvailability(*servers[i], mode);
    if (!demand.AllLeq(availability)) {
      continue;
    }
    if (out.first_feasible == SIZE_MAX) {
      out.first_feasible = i;
      if (!need_fitness) {
        return out;  // first-fit needs nothing past the first hit
      }
    }
    const double fitness = PlacementFitness(demand, availability);
    if (fitness > out.best_fitness ||
        (fitness == out.best_fitness && i < out.best_feasible)) {
      out.best_fitness = fitness;
      out.best_feasible = i;
    }
  }
  return out;
}

// Whole-candidate-set scan, sharded across `pool` when profitable. The merge
// folds chunks in ascending chunk order on the calling thread, but the
// tie-breaks make the outcome independent of that order too.
ChunkScan ScanAll(const ResourceVector& demand, const std::vector<Server*>& servers,
                  AvailabilityMode mode, bool need_fitness, ThreadPool* pool) {
  if (!UseParallelScan(servers, pool)) {
    return ScanRange(demand, servers, mode, need_fitness, 0, servers.size());
  }
  const size_t count = servers.size();
  const size_t chunks = (count + kScanChunk - 1) / kScanChunk;
  std::vector<ChunkScan> partial(chunks);
  pool->ParallelFor(static_cast<int64_t>(chunks), [&](int64_t c) {
    const size_t begin = static_cast<size_t>(c) * kScanChunk;
    const size_t end = std::min(begin + kScanChunk, count);
    partial[static_cast<size_t>(c)] =
        ScanRange(demand, servers, mode, need_fitness, begin, end);
  });
  ChunkScan merged;
  for (const ChunkScan& chunk : partial) {
    merged.first_feasible = std::min(merged.first_feasible, chunk.first_feasible);
    if (chunk.best_fitness > merged.best_fitness ||
        (chunk.best_fitness == merged.best_fitness &&
         chunk.best_feasible < merged.best_feasible)) {
      merged.best_fitness = chunk.best_fitness;
      merged.best_feasible = chunk.best_feasible;
    }
  }
  return merged;
}

}  // namespace

Result<size_t> PlaceVm(const ResourceVector& demand,
                       const std::vector<Server*>& servers, PlacementPolicy policy,
                       Rng& rng, AvailabilityMode mode, ThreadPool* pool) {
  if (servers.empty()) {
    return Error{"no servers"};
  }
  // Each candidate's availability is computed exactly once per probe:
  // feasibility and fitness consume the same vector instead of re-deriving
  // it (the server-side aggregates are cached, but the vector assembly --
  // Free/clamp/adds -- is still worth sharing on the placement hot path).
  switch (policy) {
    case PlacementPolicy::kFirstFit: {
      const ChunkScan scan = ScanAll(demand, servers, mode, /*need_fitness=*/false, pool);
      if (scan.first_feasible == SIZE_MAX) {
        return Error{"no feasible server (first-fit)"};
      }
      return scan.first_feasible;
    }

    case PlacementPolicy::kBestFit: {
      const ChunkScan scan = ScanAll(demand, servers, mode, /*need_fitness=*/true, pool);
      if (scan.best_feasible == SIZE_MAX) {
        return Error{"no feasible server (best-fit)"};
      }
      return scan.best_feasible;
    }

    case PlacementPolicy::kTwoChoices: {
      // Sample two *distinct* random servers and keep the fitter feasible
      // one; retry a few times before falling back to a full first-fit
      // scan. (Sampling with replacement would silently degenerate to one
      // choice whenever both draws land on the same server.)
      constexpr int kAttempts = 8;
      const auto count = static_cast<int64_t>(servers.size());
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const auto a = static_cast<size_t>(rng.UniformInt(0, count - 1));
        size_t b = a;
        if (count >= 2) {
          // Draw from the count-1 servers that are not `a`.
          b = static_cast<size_t>(rng.UniformInt(0, count - 2));
          if (b >= a) {
            ++b;
          }
        }
        const ResourceVector avail_a = ServerAvailability(*servers[a], mode);
        const bool fa = demand.AllLeq(avail_a);
        if (b == a) {
          if (fa) {
            return a;
          }
          continue;
        }
        const ResourceVector avail_b = ServerAvailability(*servers[b], mode);
        const bool fb = demand.AllLeq(avail_b);
        if (fa && fb) {
          const double fit_a = PlacementFitness(demand, avail_a);
          const double fit_b = PlacementFitness(demand, avail_b);
          return fit_a >= fit_b ? a : b;
        }
        if (fa) {
          return a;
        }
        if (fb) {
          return b;
        }
      }
      const ChunkScan scan = ScanAll(demand, servers, mode, /*need_fitness=*/false, pool);
      if (scan.first_feasible == SIZE_MAX) {
        return Error{"no feasible server (2-choices)"};
      }
      return scan.first_feasible;
    }
  }
  return Error{"unknown policy"};
}

}  // namespace defl
