file(REMOVE_RECURSE
  "CMakeFiles/fig5b_kcompile_cpu.dir/fig5b_kcompile_cpu.cc.o"
  "CMakeFiles/fig5b_kcompile_cpu.dir/fig5b_kcompile_cpu.cc.o.d"
  "fig5b_kcompile_cpu"
  "fig5b_kcompile_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_kcompile_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
