// Diurnal/bursty arrivals: the same 1.6x mean offered load as
// cluster_overcommit, but the arrival rate follows a sinusoidal day-night
// cycle with Poisson-arriving load bursts layered on top
// (src/sim/arrival_gen.h, Lewis-Shedler thinning). Peak-hour pressure is
// where deflation earns its keep: the cluster absorbs the crest by
// squeezing transient VMs instead of preempting them, and reinflates in the
// trough. Equivalent CLI run:
//
//   deflation_sim --servers=40 --duration-h=24 --diurnal \
//     --diurnal-amplitude=0.7 --burst-rate-per-h=1 --burst-multiplier=3 \
//     --reinflate-period-s=600
#include <cstdio>

#include "src/cluster/sim_session.h"

using namespace defl;

namespace {

ClusterSimResult Run(ReclamationStrategy strategy) {
  ClusterSimConfig config;
  config.num_servers = 40;
  config.server_capacity = ResourceVector(32.0, 256.0 * 1024.0, 1000.0, 10000.0);
  config.trace.duration_s = 24.0 * 3600.0;
  config.trace.max_lifetime_s = 8.0 * 3600.0;
  config.trace.seed = 2024;
  config.trace =
      WithTargetLoad(config.trace, 1.6, config.num_servers, config.server_capacity);
  // The mean rate stays what WithTargetLoad derived; the generator swings
  // the instantaneous rate 0.3x..1.7x around it over a 24 h cycle, and
  // bursts (about one per hour, 15 min, 3x) ride on top.
  config.arrivals.enabled = true;
  config.arrivals.diurnal_amplitude = 0.7;
  config.arrivals.diurnal_period_s = 24.0 * 3600.0;
  config.arrivals.burst_rate_per_s = 1.0 / 3600.0;
  config.arrivals.burst_duration_s = 900.0;
  config.arrivals.burst_multiplier = 3.0;
  config.arrivals.seed = 7;
  config.reinflate_period_s = 600.0;
  config.cluster.strategy = strategy;
  Result<SimSession> session = SimSession::Open(config);
  if (!session.ok()) {
    std::printf("cannot open session: %s\n", session.error().c_str());
    return ClusterSimResult{};
  }
  // Inspect at the peak of the sinusoid (t = period/4) and at the trough
  // (t = 3*period/4) to see the swing the manager is absorbing.
  SimSession& sim = session.value();
  for (const double hours : {6.0, 18.0}) {
    sim.StepUntil(hours * 3600.0);
    const SimInspectView view = sim.Inspect();
    std::printf("  [t=%02.0fh %s] %lld VMs hosted, utilization %.2f, "
                "overcommitment %.2f\n",
                view.now_s / 3600.0, hours == 6.0 ? "peak  " : "trough",
                static_cast<long long>(view.hosted_vms), view.utilization,
                view.overcommitment);
  }
  return sim.Finish();
}

void Report(const char* label, const ClusterSimResult& r) {
  std::printf("%s\n", label);
  std::printf("  VMs launched: %ld (%ld transient), rejected: %ld\n",
              r.counters.launched, r.counters.launched_low_priority,
              r.counters.rejected);
  std::printf("  transient VMs preempted: %ld (probability %.3f)\n",
              r.counters.preempted, r.preemption_probability);
  std::printf("  mean utilization %.2f, mean overcommitment %.2f (peak %.2f)\n\n",
              r.mean_utilization, r.mean_overcommitment, r.peak_overcommitment);
}

}  // namespace

int main() {
  std::printf("40 servers, 24 h sinusoidal load (0.3x..1.7x of the 1.6x mean) "
              "+ hourly bursts\n\n");
  Report("deflation-based management:", Run(ReclamationStrategy::kDeflation));
  Report("preemption-only management:", Run(ReclamationStrategy::kPreemptionOnly));
  return 0;
}
