// Epoch/arena memory for the simulation hot loop (DESIGN.md §14).
//
// The simulator's per-event and per-tick scratch objects do not have
// individual lifetimes -- phases do (SNIPPETS.md snippet 1, temporal-slab):
// trace records live until the trace is cleared, per-probe scratch lives for
// one placement probe, shard gather buffers live for one parallel sweep.
// EpochArena exploits that: allocation is a bump-pointer walk over pooled
// blocks, and ResetEpoch() retires every block to an internal free pool in
// O(blocks) with no destructor walk. After the first epoch has sized the
// pool, steady-state epochs perform ZERO operating-system allocations; the
// os_allocations() counter makes that testable and CI-gateable.
//
// ShardScratch is the companion retire-reclaim handoff (snippet 2,
// retire_reclaim.hpp): the coordinator owns a set of per-shard buffers,
// parallel workers fill exactly their own shard during a fork-join phase
// (the DESIGN.md §10 ownership rule), and after the join the coordinator
// drains the results in canonical shard order and retires every buffer --
// clear() with capacity intact -- so the next phase reuses the same memory
// without touching the allocator.
//
// Neither type is thread-safe for concurrent allocation; both are built for
// the single-coordinator fork-join model the cluster simulator uses.
#ifndef SRC_COMMON_EPOCH_ARENA_H_
#define SRC_COMMON_EPOCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace defl {

class EpochArena {
 public:
  // Usable bytes per pooled block. Oversized requests get a dedicated block
  // (the fallback path) that is released back to the OS at the next reset.
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit EpochArena(size_t block_bytes = kDefaultBlockBytes);
  EpochArena(const EpochArena&) = delete;
  EpochArena& operator=(const EpochArena&) = delete;
  ~EpochArena();

  // Bump-allocates `size` bytes aligned to `align` (a power of two, at most
  // alignof(std::max_align_t)). Never returns nullptr; size 0 yields a
  // one-byte reservation so distinct calls return distinct pointers.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  // Typed allocation. Arena objects are never destroyed individually --
  // ResetEpoch drops them wholesale -- so T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "EpochArena never runs destructors; T must not need one");
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  // Typed array allocation (value-initialized). Same triviality contract.
  template <typename T>
  T* NewArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "EpochArena never runs destructors; T must not need one");
    void* p = Allocate(sizeof(T) * count, alignof(T));
    return new (p) T[count]();
  }

  // Ends the current epoch: every pooled block (full or current) returns to
  // the free pool for reuse, oversized blocks are released, and the next
  // Allocate starts bumping from recycled memory. Invalidates every pointer
  // the arena has handed out.
  void ResetEpoch();

  // --- Introspection (tests and the CI allocation gate) ---
  // Completed epochs (ResetEpoch calls).
  int64_t epochs() const { return epochs_; }
  // Bytes bump-allocated since the last reset (including alignment padding).
  size_t epoch_bytes() const { return epoch_bytes_; }
  // Blocks currently parked in the free pool.
  size_t free_blocks() const { return free_blocks_.size(); }
  // Cumulative block requests that went to the operating system. Flat across
  // steady-state epochs -- the allocation-free invariant.
  int64_t os_allocations() const { return os_allocations_; }
  // Cumulative oversized (> block size) fallback allocations.
  int64_t oversized_allocations() const { return oversized_allocations_; }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
  };

  // Starts a fresh bump region able to hold `min_bytes`, recycling a pooled
  // block when one exists (pooled blocks all have capacity block_bytes_).
  void StartBlock(size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> used_blocks_;  // exhausted + oversized, current epoch
  std::vector<Block> free_blocks_;  // recycled, ready for reuse
  Block current_;
  size_t cursor_ = 0;  // bump offset into current_

  int64_t epochs_ = 0;
  size_t epoch_bytes_ = 0;
  int64_t os_allocations_ = 0;
  int64_t oversized_allocations_ = 0;
};

// Per-shard reusable buffers with a retire-reclaim handoff (header comment).
// Workers call shard(i) for their own shard only; Retire() runs on the
// coordinator after the join, once the results have been folded.
template <typename T>
class ShardScratch {
 public:
  // Grows (never shrinks) to `shards` buffers; existing capacity is kept.
  void EnsureShards(size_t shards) {
    if (buffers_.size() < shards) {
      buffers_.resize(shards);
    }
  }

  size_t shards() const { return buffers_.size(); }

  std::vector<T>& shard(size_t i) { return buffers_[i]; }
  const std::vector<T>& shard(size_t i) const { return buffers_[i]; }

  // The retire step: empties every buffer, keeping its heap capacity, so the
  // next parallel phase refills warmed memory. Coordinator-only, and only
  // after the fork-join phase has completed (retire-before-join would race
  // the workers still writing).
  void Retire() {
    for (std::vector<T>& buffer : buffers_) {
      buffer.clear();
    }
  }

 private:
  std::vector<std::vector<T>> buffers_;
};

}  // namespace defl

#endif  // SRC_COMMON_EPOCH_ARENA_H_
