// DurableSession: a SimSession that survives SIGKILL. Wraps the steppable
// session with the durability layer of DESIGN.md §13 -- every externally
// injected command is appended to a checksummed write-ahead journal
// (`wal.log`) and fsynced BEFORE it executes, and the full simulation state
// is checkpointed atomically (`ckpt-<id>.snap`, tmp + fsync + rename) at a
// configurable sim-time cadence with keep-last-K retention. Killing the
// process at ANY instant -- mid-step, mid-WAL-append, between a checkpoint's
// marker and its snapshot, mid-rename -- loses nothing: Recover() loads the
// newest valid checkpoint, re-applies the journaled command suffix, and the
// rebuilt session is byte-identical to an uninterrupted run, at any thread
// count on either side of the crash.
//
//   run directory layout:
//     wal.log           append-only command journal (src/sim/wal_io.h)
//     ckpt-000000.snap  genesis checkpoint (t = 0)
//     ckpt-00000N.snap  newest K checkpoints (older ones retired)
//
//   DurableSession::Options opt{.dir = "run.durable"};
//   auto d = DurableSession::CanRecover(opt.dir)
//                ? DurableSession::Recover(opt)
//                : DurableSession::Create(config, opt);
//   d.value().Finish();   // journals, checkpoints, and completes the run
#ifndef SRC_CLUSTER_DURABLE_SESSION_H_
#define SRC_CLUSTER_DURABLE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/cluster/sim_session.h"
#include "src/common/result.h"
#include "src/sim/wal_io.h"

namespace defl {

class DurableSession {
 public:
  struct Options {
    std::string dir;  // run directory (created if missing)
    // Auto-checkpoint every N simulated seconds during StepUntil/Finish.
    // 0 keeps only the genesis and final checkpoints (plus explicit calls).
    double checkpoint_every_s = 3600.0;
    // Keep the newest K checkpoint snapshots; older ones are unlinked once a
    // newer one is durably in place. Minimum 1.
    int keep_checkpoints = 3;
    // Skip a cadence checkpoint when the previous checkpoint landed less
    // than this many WALL-clock seconds ago. Bounds the durability overhead
    // at ~(per-checkpoint cost / interval) no matter how many sim-hours per
    // wall-second the run achieves; a crash then loses at most
    // min(checkpoint_every_s of sim time, this much wall time) of work.
    // 0 disables the gate. Genesis, post-replay, explicit Checkpoint(), and
    // final checkpoints are never skipped.
    double min_checkpoint_wall_s = 0.0;
    // Recover(): publish into this fresh context (SimSession::RestoreOptions
    // semantics). Create() takes the context from ClusterSimConfig.
    TelemetryContext* telemetry = nullptr;
    // Recover(): > 0 overrides the snapshotted thread count.
    int threads = 0;
  };

  // True when `dir` holds a recoverable run: a readable WAL header and at
  // least one checkpoint snapshot file. A directory that died before its
  // genesis checkpoint completed is NOT recoverable -- no command was ever
  // acknowledged, so the driver simply starts fresh.
  static bool CanRecover(const std::string& dir);

  // Starts a fresh durable run: writes the WAL header and the genesis
  // checkpoint before returning, so recovery works from the first kill on.
  static Result<DurableSession> Create(const ClusterSimConfig& config,
                                       const Options& options);

  // Rebuilds the run from `dir` and reattaches the journal for appending:
  // newest valid checkpoint + command replay (taking any auto-checkpoints
  // the dead process didn't live to take), torn WAL tail truncated, and the
  // post-replay state checkpointed so every recovery durably advances.
  static Result<DurableSession> Recover(const Options& options);

  // Journals the command (write + fsync), then executes it, cutting
  // auto-checkpoints at every cadence boundary crossed. Returns an error
  // only when the journal or a checkpoint could not be made durable -- the
  // simulation state is still consistent afterwards.
  Result<bool> StepUntil(double t);
  // Journals "run until N total events" (an absolute target, so replay is
  // idempotent), then executes. Returns how many events ran.
  Result<int64_t> StepEvents(int64_t max_events);

  // Cuts a checkpoint now: marker record into the WAL first, then the
  // atomic snapshot write, then retention. A repeat at an unchanged state is
  // a no-op (deduped), so restarts don't accrete identical snapshots.
  Result<bool> Checkpoint();

  // Checkpoints actually skipped by the min_checkpoint_wall_s gate.
  int64_t checkpoints_gated() const { return checkpoints_gated_; }

  // Journals a step to the horizon, runs it (with cadence checkpoints),
  // cuts the final checkpoint, and derives the result.
  Result<ClusterSimResult> Finish();

  SimSession& session() { return session_; }
  const SimSession& session() const { return session_; }
  // Checkpoints this object has written (not counting deduped no-ops).
  int64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  DurableSession(SimSession session, WalWriter wal, Options options);

  // The shared execution path: optionally journals the command, then steps
  // with auto-checkpoints at cadence boundaries. Replay passes journal=false
  // (the command is already in the WAL).
  Result<bool> ApplyStepUntil(double t, bool journal);

  // Cadence-boundary checkpoint, subject to the wall-clock gate; `forced`
  // bypasses it (genesis, post-replay, final, explicit calls).
  Result<bool> CheckpointInternal(bool forced);

  std::string CheckpointPath(uint64_t id) const;

  SimSession session_;
  WalWriter wal_;
  Options options_;
  uint64_t next_checkpoint_id_ = 0;
  // Dedupe key: the (sim time, events) the newest durable snapshot holds.
  double last_ckpt_time_s_ = -1.0;
  int64_t last_ckpt_events_ = -1;
  int64_t checkpoints_written_ = 0;
  int64_t checkpoints_gated_ = 0;
  // Wall-clock instant the last checkpoint (or construction) completed,
  // for the min_checkpoint_wall_s gate.
  std::chrono::steady_clock::time_point last_ckpt_wall_;
};

}  // namespace defl

#endif  // SRC_CLUSTER_DURABLE_SESSION_H_
