# Empty dependencies file for cluster_binding_test.
# This may be replaced when dependencies are built.
