#include "src/cluster/cluster_manager.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace defl {

ClusterManager::ClusterManager(int num_servers, const ResourceVector& server_capacity,
                               const ClusterConfig& config)
    : config_(config), rng_(config.seed) {
  assert(num_servers > 0);
  for (int i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<Server>(i, server_capacity));
    controllers_.push_back(
        std::make_unique<LocalController>(servers_.back().get(), config.controller));
  }
}

std::vector<Server*> ClusterManager::servers() {
  std::vector<Server*> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) {
    out.push_back(s.get());
  }
  return out;
}

LocalController* ClusterManager::controller(ServerId id) {
  for (auto& c : controllers_) {
    if (c->server()->id() == id) {
      return c.get();
    }
  }
  return nullptr;
}

Result<ServerId> ClusterManager::LaunchVm(std::unique_ptr<Vm> vm) {
  assert(vm != nullptr);
  const ResourceVector demand = vm->size();
  const bool low_priority = vm->deflatable();

  // Reclamation happens only under resource pressure (Section 5): prefer a
  // server with enough untouched free capacity, and fall back to reclaimable
  // availability only when none exists. What is reclaimable depends on the
  // strategy and the arrival's priority: deflation-managed clusters can
  // shrink low-priority VMs for anyone; preemption-only clusters can revoke
  // low-priority VMs for high-priority arrivals but give low-priority
  // arrivals only free space.
  std::vector<AvailabilityMode> passes = {AvailabilityMode::kFreeOnly};
  if (config_.strategy == ReclamationStrategy::kDeflation) {
    passes.push_back(AvailabilityMode::kFreePlusDeflatable);
  }
  if (!low_priority) {
    // High priority displaces low priority outright as the last resort.
    passes.push_back(AvailabilityMode::kFreePlusPreemptible);
  }
  Result<size_t> placed = Error{"unplaced"};
  for (const AvailabilityMode mode : passes) {
    placed = PlaceVm(demand, servers(), config_.placement, rng_, mode);
    if (placed.ok()) {
      break;
    }
  }
  if (!placed.ok()) {
    ++counters_.rejected;
    return Error{placed.error()};
  }
  Server& server = *servers_[placed.value()];

  if (!demand.AllLeq(server.Free())) {
    if (config_.strategy == ReclamationStrategy::kDeflation) {
      LocalController* controller = controllers_[placed.value()].get();
      const ReclaimResult reclaim = controller->MakeRoom(demand);
      for (const VmId victim : reclaim.preempted) {
        ++counters_.preempted;
        preempted_since_take_.push_back(victim);
      }
      if (!reclaim.deflated.empty()) {
        ++counters_.deflation_ops;
      }
      if (!reclaim.success) {
        ++counters_.rejected;
        return Error{"reclamation failed on chosen server"};
      }
    } else {
      if (!PreemptForDemand(server, demand)) {
        ++counters_.rejected;
        return Error{"preemption could not free enough resources"};
      }
    }
  }

  ++counters_.launched;
  if (low_priority) {
    ++counters_.launched_low_priority;
  }
  server.AddVm(std::move(vm));
  return server.id();
}

bool ClusterManager::PreemptForDemand(Server& server, const ResourceVector& demand) {
  while (!demand.AllLeq(server.Free())) {
    // Revoke the low-priority VM freeing the most of the bottleneck
    // resource (standard eviction heuristic).
    Vm* victim = nullptr;
    double victim_gain = -1.0;
    const ResourceVector need = (demand - server.Free()).ClampNonNegative();
    for (const auto& vm : server.vms()) {
      if (vm->priority() != VmPriority::kLow) {
        continue;
      }
      const double gain = vm->effective().Min(need).SafeDivide(server.capacity()).Sum();
      if (gain > victim_gain) {
        victim_gain = gain;
        victim = vm.get();
      }
    }
    if (victim == nullptr) {
      return false;
    }
    const VmId id = victim->id();
    victim->set_state(VmState::kPreempted);
    server.RemoveVm(id);
    ++counters_.preempted;
    preempted_since_take_.push_back(id);
  }
  return true;
}

void ClusterManager::CompleteVm(VmId id) {
  for (size_t i = 0; i < servers_.size(); ++i) {
    Server& server = *servers_[i];
    if (server.FindVm(id) == nullptr) {
      continue;
    }
    std::unique_ptr<Vm> vm = server.RemoveVm(id);
    vm->set_state(VmState::kCompleted);
    controllers_[i]->UnregisterAgent(id);
    ++counters_.completed;
    // Freed resources flow back to deflated VMs (reverse cascade).
    if (config_.strategy == ReclamationStrategy::kDeflation) {
      controllers_[i]->ReinflateAll();
    }
    return;
  }
}

Vm* ClusterManager::FindVm(VmId id) {
  for (const auto& server : servers_) {
    if (Vm* vm = server->FindVm(id)) {
      return vm;
    }
  }
  return nullptr;
}

Server* ClusterManager::ServerOf(VmId id) {
  for (const auto& server : servers_) {
    if (server->FindVm(id) != nullptr) {
      return server.get();
    }
  }
  return nullptr;
}

std::vector<VmId> ClusterManager::TakePreempted() {
  std::vector<VmId> out;
  out.swap(preempted_since_take_);
  return out;
}

double ClusterManager::Utilization() const {
  ResourceVector allocated;
  ResourceVector capacity;
  for (const auto& server : servers_) {
    allocated += server->Allocated();
    capacity += server->capacity();
  }
  double util = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity[kind] > 0.0) {
      util = std::max(util, allocated[kind] / capacity[kind]);
    }
  }
  return std::min(util, 1.0);
}

double ClusterManager::Overcommitment() const {
  ResourceVector nominal;
  ResourceVector capacity;
  for (const auto& server : servers_) {
    capacity += server->capacity();
    for (const auto& vm : server->vms()) {
      nominal += vm->size();
    }
  }
  double oc = 0.0;
  for (const ResourceKind kind : kAllResources) {
    if (capacity[kind] > 0.0) {
      oc = std::max(oc, nominal[kind] / capacity[kind]);
    }
  }
  return oc;
}

std::vector<double> ClusterManager::PerServerOvercommitment() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) {
    out.push_back(server->NominalOvercommitment());
  }
  return out;
}

}  // namespace defl
