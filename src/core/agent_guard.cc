#include "src/core/agent_guard.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace defl {

GuardedAgent::GuardedAgent(VmId vm_id, DeflationAgent* inner, FaultInjector* faults,
                           const AgentGuardConfig& config)
    : vm_id_(vm_id), inner_(inner), faults_(faults), config_(config) {
  // Registration happens while the agent is known-good; seed the cached
  // footprint so a later outage never reports an empty application.
  last_footprint_mb_ = inner_ != nullptr ? inner_->MemoryFootprintMb() : 0.0;
}

void GuardedAgent::AttachTelemetry(TelemetryContext* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    metrics_ = {};
    return;
  }
  MetricsRegistry& registry = telemetry_->metrics();
  metrics_.timeouts = registry.Counter("faults/agent_rpc/timeouts");
  metrics_.retries = registry.Counter("faults/agent_rpc/retries");
  metrics_.breaker_trips = registry.Counter("faults/breaker/trips");
  metrics_.breaker_resets = registry.Counter("faults/breaker/resets");
  metrics_.fall_throughs = registry.Counter("faults/breaker/fall_throughs");
}

double GuardedAgent::TakeInjectedDelay() {
  const double delay = pending_delay_s_;
  pending_delay_s_ = 0.0;
  return delay;
}

bool GuardedAgent::AttemptTimesOut() {
  if (faults_ == nullptr) {
    return false;
  }
  const FaultDecision unresponsive =
      faults_->Sample(FaultKind::kAgentUnresponsive, vm_id_, -1);
  if (unresponsive.fired) {
    pending_delay_s_ += config_.rpc_timeout_s;
    return true;
  }
  const FaultDecision slow = faults_->Sample(FaultKind::kAgentSlow, vm_id_, -1);
  if (slow.fired) {
    if (slow.magnitude > config_.rpc_timeout_s && config_.rpc_timeout_s > 0.0) {
      pending_delay_s_ += config_.rpc_timeout_s;  // gave up waiting
      return true;
    }
    pending_delay_s_ += slow.magnitude;
  }
  return false;
}

void GuardedAgent::NoteTimeout() {
  ++timeouts_;
  ++consecutive_timeouts_;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.timeouts);
    telemetry_->trace().Record(TraceEventKind::kAgentTimeout, CascadeLayer::kApplication,
                               vm_id_, -1, ResourceVector::Zero(),
                               ResourceVector::Zero(), consecutive_timeouts_);
  }
  if (!breaker_open_ && consecutive_timeouts_ >= config_.breaker_threshold) {
    breaker_open_ = true;
    ++breaker_trips_;
    DEFL_LOG(kInfo) << "vm " << vm_id_ << ": agent circuit breaker opened after "
                    << consecutive_timeouts_ << " consecutive timeouts";
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Add(metrics_.breaker_trips);
      telemetry_->trace().Record(TraceEventKind::kBreakerTrip, CascadeLayer::kApplication,
                                 vm_id_, -1, ResourceVector::Zero(),
                                 ResourceVector::Zero(), consecutive_timeouts_);
    }
  }
}

bool GuardedAgent::ProbeAndMaybeClose() {
  // One kFootprintQuery round trip; the probe itself can time out.
  if (AttemptTimesOut()) {
    ++timeouts_;
    if (telemetry_ != nullptr) {
      telemetry_->metrics().Add(metrics_.timeouts);
      telemetry_->metrics().Add(metrics_.fall_throughs);
    }
    return false;
  }
  last_footprint_mb_ = inner_->MemoryFootprintMb();
  breaker_open_ = false;
  consecutive_timeouts_ = 0;
  DEFL_LOG(kInfo) << "vm " << vm_id_ << ": footprint probe succeeded, breaker closed";
  if (telemetry_ != nullptr) {
    telemetry_->metrics().Add(metrics_.breaker_resets);
    telemetry_->trace().Record(TraceEventKind::kBreakerReset, CascadeLayer::kApplication,
                               vm_id_, -1, ResourceVector::Zero(),
                               ResourceVector(0.0, last_footprint_mb_), 0);
  }
  return true;
}

ResourceVector GuardedAgent::SelfDeflate(const ResourceVector& target) {
  if (inner_ == nullptr) {
    return ResourceVector::Zero();
  }
  if (breaker_open_ && !ProbeAndMaybeClose()) {
    // Agent still dead: fall straight through to the OS/hypervisor layers.
    return ResourceVector::Zero();
  }
  for (int attempt = 0; attempt < std::max(config_.max_attempts, 1); ++attempt) {
    if (attempt > 0) {
      pending_delay_s_ += std::min(config_.backoff_base_s * std::pow(2.0, attempt - 1),
                                   config_.backoff_cap_s);
      ++retries_;
      if (telemetry_ != nullptr) {
        telemetry_->metrics().Add(metrics_.retries);
      }
    }
    if (AttemptTimesOut()) {
      NoteTimeout();
      if (breaker_open_) {
        return ResourceVector::Zero();  // tripped mid-request
      }
      continue;
    }
    consecutive_timeouts_ = 0;
    ResourceVector freed = inner_->SelfDeflate(target).ClampNonNegative();
    if (faults_ != nullptr) {
      const FaultDecision shorted =
          faults_->Sample(FaultKind::kAgentShortDelivery, vm_id_, -1);
      if (shorted.fired) {
        freed = freed * std::clamp(shorted.magnitude, 0.0, 1.0);
      }
    }
    last_footprint_mb_ = inner_->MemoryFootprintMb();
    return freed;
  }
  return ResourceVector::Zero();  // every attempt timed out; fall through
}

void GuardedAgent::OnReinflate(const ResourceVector& added) {
  if (inner_ == nullptr || breaker_open_) {
    return;  // a lost reinflate notice is harmless; the app catches up later
  }
  if (AttemptTimesOut()) {
    NoteTimeout();
    return;
  }
  consecutive_timeouts_ = 0;
  inner_->OnReinflate(added);
  last_footprint_mb_ = inner_->MemoryFootprintMb();
}

double GuardedAgent::MemoryFootprintMb() const {
  if (inner_ == nullptr) {
    return 0.0;
  }
  if (breaker_open_) {
    return last_footprint_mb_;
  }
  last_footprint_mb_ = inner_->MemoryFootprintMb();
  return last_footprint_mb_;
}

WireTransport MakeFaultyTransport(WireTransport inner, FaultInjector* faults,
                                  VmId vm_id) {
  return [inner = std::move(inner), faults, vm_id](const std::string& request) {
    if (faults != nullptr) {
      if (faults->Sample(FaultKind::kWireDrop, vm_id, -1).fired) {
        return std::string();
      }
    }
    std::string response = inner(request);
    if (faults != nullptr && !response.empty()) {
      const FaultDecision corrupt = faults->Sample(FaultKind::kWireCorrupt, vm_id, -1);
      if (corrupt.fired) {
        const size_t pos = std::min(
            response.size() - 1,
            static_cast<size_t>(corrupt.roll * static_cast<double>(response.size())));
        response[pos] = '~';
      }
    }
    return response;
  };
}

}  // namespace defl
