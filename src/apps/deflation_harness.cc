#include "src/apps/deflation_harness.h"

namespace defl {

VmSpec StandardVmSpec() {
  VmSpec spec;
  spec.name = "standard-vm";
  spec.size = ResourceVector(4.0, 16.0 * 1024.0, 200.0, 1250.0);
  spec.priority = VmPriority::kLow;
  return spec;
}

HarnessResult DeflateAppVm(AppModel& app, DeflationMode mode,
                           const ResourceVector& fractions, const VmSpec& spec,
                           bool use_agent) {
  Vm vm(0, spec);
  vm.guest_os().set_app_used_mb(app.MemoryFootprintMb());

  CascadeController controller(mode);
  DeflationAgent* agent = use_agent ? app.agent() : nullptr;
  const ResourceVector target = spec.size.Scale(fractions);

  HarnessResult result;
  result.outcome = controller.Deflate(vm, agent, target);
  // Keep guest accounting in sync even when the agent was not consulted by
  // the cascade (e.g. VM-level mode with an elastic app left unmodified).
  vm.guest_os().set_app_used_mb(app.MemoryFootprintMb());
  result.alloc = vm.allocation();
  result.oom = vm.guest_os().UnderOomPressure();
  return result;
}

}  // namespace defl
