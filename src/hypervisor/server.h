// Physical server model: capacity, hosted VMs, and the free / deflatable
// accounting the cluster manager's placement policies consume (Section 5:
// availability = free + deflatable).
#ifndef SRC_HYPERVISOR_SERVER_H_
#define SRC_HYPERVISOR_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hypervisor/vm.h"
#include "src/resources/resource_vector.h"
#include "src/telemetry/telemetry.h"

namespace defl {

using ServerId = int64_t;

// Aggregate resource view of one server, folded over its hosted VMs in
// hosting order. Cached by Server and refreshed lazily: any VM mutation
// (add/remove/deflate/reinflate/hv-reclaim) invalidates the cache through
// the AllocationListener hooks, and the next accessor recomputes the fold.
// Because the refresh replays exactly the from-scratch fold, cached values
// are always bit-identical to a recomputation -- the cache can be stale
// only if a mutation path misses its notification hook, which the
// DEFL_CHECK_ACCOUNTING build cross-validates on every read.
//
// Thread-safety (DESIGN.md §10): the cache is guarded by SHARD OWNERSHIP,
// not locks. Even const accessors may refresh the mutable cache, so during
// a parallel phase exactly one thread -- the worker owning this server's
// shard -- may touch this server (reads included); the coordinator thread
// only resumes reading after the fork-join barrier. Concurrent access to
// one server from two threads is a data race by design and is what the
// ThreadSanitizer CI job exists to catch.
struct ServerAccounting {
  // Sum of effective (physically backed) allocations.
  ResourceVector allocated;
  // Sum of what deflation may still reclaim (zero for high-priority VMs).
  ResourceVector deflatable;
  // Sum of effective allocations of low-priority (preemptible) VMs.
  ResourceVector preemptible;
  // Sum of nominal VM sizes (the overcommitment numerator).
  ResourceVector nominal;

  bool operator==(const ServerAccounting& o) const = default;
};

// Observer of one server's allocation-affecting mutations, keyed by server
// id. This is the hook the cluster layer's structure-of-arrays FleetView
// (src/cluster/fleet_view.h) uses to mark its mirrored row stale: every
// notification that dirties the server's own accounting cache is forwarded
// here too, so the flat mirror can never miss an invalidation the cache saw.
// Notifications fire only on mutations, which under the DESIGN.md §10 rules
// happen exclusively on the coordinator thread -- lazy cache refreshes on
// shard workers do not notify.
class ServerObserver {
 public:
  virtual ~ServerObserver() = default;
  virtual void OnServerAllocationChanged(ServerId id) = 0;
};

class Server : public AllocationListener {
 public:
  Server(ServerId id, ResourceVector capacity);

  ServerId id() const { return id_; }
  const ResourceVector& capacity() const { return capacity_; }

  // --- VM hosting ---

  // Takes ownership. The VM's effective allocation must fit in Free() at
  // admission time (the caller deflates first if needed); this is checked.
  Vm* AddVm(std::unique_ptr<Vm> vm);
  // Removes the VM and returns ownership (completion, migration, preemption).
  std::unique_ptr<Vm> RemoveVm(VmId id);
  Vm* FindVm(VmId id);
  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }
  size_t vm_count() const { return vms_.size(); }

  // --- Accounting (O(1) on a clean cache; see ServerAccounting) ---

  // Sum of effective (physically backed) allocations of hosted VMs.
  ResourceVector Allocated() const;
  // capacity - Allocated(), clamped non-negative.
  ResourceVector Free() const;
  // Total resources still reclaimable from hosted low-priority VMs.
  ResourceVector Deflatable() const;
  // Free + Deflatable: the availability vector used by placement fitness.
  ResourceVector Availability() const;
  // Everything low-priority VMs physically hold: what a high-priority
  // arrival could claim by displacing them outright.
  ResourceVector Preemptible() const;
  // Sum of nominal VM sizes (the cached overcommitment numerator).
  ResourceVector NominalDemand() const;

  // Forces the lazy aggregate refresh now. The sharded simulation calls this
  // from the worker that owns this server's shard so the subsequent
  // sequential reduction reads only clean O(1) caches (DESIGN.md §10).
  void WarmAccountingCache() const { (void)accounting(); }

  // From-scratch fold over the hosted VMs (the reference the cache must
  // match). Exposed for the accounting invariant checks and property tests.
  ServerAccounting RecomputeAccounting() const;
  // True when the cached aggregates (if any are cached) are exactly equal
  // to RecomputeAccounting(). A mutation path that misses its notification
  // hook shows up here as a stale-but-clean cache.
  bool AccountingConsistent() const;

  // Invalidates the cached aggregates (AllocationListener; invoked by
  // hosted VMs on every allocation-changing mutation) and forwards the
  // invalidation to the attached observer, if any. AddVm/RemoveVm route
  // through here too, so the observer sees every path that dirties the
  // cache.
  void OnAllocationChanged() override {
    accounting_dirty_ = true;
    if (observer_ != nullptr) {
      observer_->OnServerAllocationChanged(id_);
    }
  }

  // Attaches the single allocation-change observer (nullptr detaches). Used
  // by FleetView to mirror this server into its flat arrays.
  void set_observer(ServerObserver* observer) { observer_ = observer; }

  // Sum of *nominal* VM sizes over capacity (per the dominant dimension):
  // the server overcommitment metric reported in Figure 8d. 1.0 = exactly
  // full at nominal sizes; > 1.0 = overcommitted.
  double NominalOvercommitment() const;

  // Fraction of capacity backed to VMs (dominant dimension), in [0, 1].
  double Utilization() const;

  // True if a VM of `demand` could run here after deflating low-priority
  // VMs as far as allowed.
  bool CanFitWithDeflation(const ResourceVector& demand) const;

  // Publishes VM-lifecycle events and overcommit transitions (nominal
  // overcommitment crossing 1.0) through `telemetry` (nullptr detaches).
  void AttachTelemetry(TelemetryContext* telemetry);
  TelemetryContext* telemetry() const { return telemetry_; }

 private:
  // Emits kOvercommitEnter/kOvercommitExit when AddVm/RemoveVm moved the
  // nominal overcommitment across 1.0.
  void RecordOvercommitTransition(double before, int64_t vm);
  // Returns the cached aggregates, refreshing them first when dirty.
  const ServerAccounting& accounting() const;

  ServerId id_;
  ResourceVector capacity_;
  std::vector<std::unique_ptr<Vm>> vms_;
  mutable ServerAccounting accounting_;
  mutable bool accounting_dirty_ = true;
  ServerObserver* observer_ = nullptr;

  TelemetryContext* telemetry_ = nullptr;
  struct {
    CounterHandle vms_added;
    CounterHandle vms_removed;
    CounterHandle overcommit_entries;
  } metrics_;
};

}  // namespace defl

#endif  // SRC_HYPERVISOR_SERVER_H_
