file(REMOVE_RECURSE
  "libdefl_resources.a"
)
